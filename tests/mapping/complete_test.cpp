#include "mapping/complete_mapper.hpp"

#include <gtest/gtest.h>

#include "arch/device_catalog.hpp"
#include "mapping/global_mapper.hpp"
#include "mapping/validate.hpp"
#include "support/rng.hpp"

namespace gmm::mapping {
namespace {

design::DataStructure ds(const std::string& name, std::int64_t depth,
                         std::int64_t width) {
  design::DataStructure s;
  s.name = name;
  s.depth = depth;
  s.width = width;
  return s;
}

TEST(CompleteMapper, SolvesSmallDesign) {
  const arch::Board board = arch::single_fpga_board("XCV50", 2);
  design::Design design("d");
  design.add(ds("a", 1024, 4));
  design.add(ds("b", 256, 16));
  design.set_all_conflicting();
  const CostTable table(design, board);
  const CompleteResult r = map_complete(design, board, table);
  ASSERT_EQ(r.status, lp::SolveStatus::kOptimal);
  EXPECT_TRUE(r.assignment.complete());
  EXPECT_TRUE(r.detailed.success);
  EXPECT_TRUE(validate_mapping(design, board, r.assignment, r.detailed)
                  .empty());
}

TEST(CompleteMapper, FlatModelIsMuchBiggerThanGlobal) {
  const arch::Board board = arch::single_fpga_board("XCV1000", 4);
  design::Design design("d");
  for (int i = 0; i < 8; ++i) {
    design.add(ds("s" + std::to_string(i), 512, 8));
  }
  design.set_all_conflicting();
  const CostTable table(design, board);
  const GlobalResult global = map_global(design, board, table);
  const CompleteResult complete = map_complete(design, board, table);
  ASSERT_EQ(global.status, lp::SolveStatus::kOptimal);
  ASSERT_EQ(complete.status, lp::SolveStatus::kOptimal);
  // The paper's point: the flat formulation explodes with instances.
  EXPECT_GT(complete.model_size.variables, 4 * global.model_size.variables);
  EXPECT_GT(complete.model_size.rows, 4 * global.model_size.rows);
}

// The optimality-preservation claim: global/detailed reaches the same
// objective the complete formulation proves optimal.
class ParitySweep : public ::testing::TestWithParam<int> {};

TEST_P(ParitySweep, GlobalMatchesCompleteObjective) {
  support::Rng rng(3600 + GetParam());
  arch::Board board("b");
  arch::BankType onchip =
      arch::on_chip_bank_type(*arch::find_device("XCV100"));
  board.add_bank_type(onchip);
  board.add_bank_type(arch::offchip_sram(2, 8192, 16));

  design::Design design("d");
  const int n = static_cast<int>(rng.uniform_int(3, 8));
  for (int i = 0; i < n; ++i) {
    auto s = ds("s" + std::to_string(i), rng.uniform_int(64, 3000),
                rng.uniform_int(1, 16));
    s.reads = rng.uniform_int(10, 10000);
    s.writes = rng.uniform_int(10, 1000);
    design.add(s);
  }
  design.set_all_conflicting();
  const CostTable table(design, board);
  // Exact-equality comparison requires proving to zero gap (the default
  // matches CPLEX's 1e-4, which these instances are small enough to beat).
  GlobalOptions global_options;
  global_options.mip.rel_gap = 1e-9;
  CompleteOptions complete_options;
  complete_options.mip.rel_gap = 1e-9;
  const GlobalResult global = map_global(design, board, table, global_options);
  const CompleteResult complete =
      map_complete(design, board, table, complete_options);
  if (global.status == lp::SolveStatus::kInfeasible) {
    // The flat formulation must agree on infeasibility.
    EXPECT_EQ(complete.status, lp::SolveStatus::kInfeasible)
        << "seed " << GetParam();
    return;
  }
  ASSERT_EQ(global.status, lp::SolveStatus::kOptimal) << "seed " << GetParam();
  ASSERT_EQ(complete.status, lp::SolveStatus::kOptimal)
      << "seed " << GetParam();
  EXPECT_NEAR(global.assignment.objective, complete.assignment.objective,
              1e-6 * std::max(1.0, global.assignment.objective))
      << "seed " << GetParam();
  // The complete mapper's decoded placement must be legal.
  EXPECT_TRUE(validate_mapping(design, board, complete.assignment,
                               complete.detailed)
                  .empty())
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, ParitySweep, ::testing::Range(0, 15));

TEST(CompleteMapper, HeuristicOnOffSameOptimum) {
  support::Rng rng(111);
  const arch::Board board = arch::single_fpga_board("XCV150", 2);
  design::Design design("d");
  for (int i = 0; i < 5; ++i) {
    design.add(ds("s" + std::to_string(i), rng.uniform_int(100, 2000),
                  rng.uniform_int(1, 16)));
  }
  design.set_all_conflicting();
  const CostTable table(design, board);
  CompleteOptions with, without;
  with.use_packing_heuristic = true;
  without.use_packing_heuristic = false;
  with.mip.rel_gap = 1e-9;
  without.mip.rel_gap = 1e-9;
  const CompleteResult a = map_complete(design, board, table, with);
  const CompleteResult b = map_complete(design, board, table, without);
  ASSERT_EQ(a.status, lp::SolveStatus::kOptimal);
  ASSERT_EQ(b.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(a.assignment.objective, b.assignment.objective, 1e-6);
}

}  // namespace
}  // namespace gmm::mapping
