// Multi-device sharded mapping: single-device degeneration (bitwise
// identical to map_pipeline), zero-bank devices, the devices x threads
// determinism grid, stitch-cost accounting, the repair loop, and
// legality of the stitched flat-index mapping.
#include "mapping/shard_mapper.hpp"

#include <gtest/gtest.h>

#include <string>

#include "arch/device_catalog.hpp"
#include "mapping/pipeline.hpp"
#include "mapping/validate.hpp"
#include "support/rng.hpp"
#include "workload/workload_gen.hpp"

namespace gmm::mapping {
namespace {

design::DataStructure ds(const std::string& name, std::int64_t depth,
                         std::int64_t width) {
  design::DataStructure s;
  s.name = name;
  s.depth = depth;
  s.width = width;
  return s;
}

design::Design fft_like_design() {
  design::Design design("fft");
  design.add(ds("twiddle", 1024, 16));
  design.add(ds("ping", 1024, 32));
  design.add(ds("pong", 1024, 32));
  design.add(ds("spill", 4096, 16));
  design.set_all_conflicting();
  return design;
}

/// Field-for-field equality with the plain pipeline result: the 1-device
/// degeneration contract is IDENTICAL output, not merely equal cost.
void expect_matches_pipeline(const ShardResult& sharded,
                             const PipelineResult& pipeline) {
  EXPECT_EQ(sharded.status, pipeline.status);
  EXPECT_EQ(sharded.assignment.type_of, pipeline.assignment.type_of);
  EXPECT_EQ(sharded.assignment.objective, pipeline.assignment.objective);
  EXPECT_EQ(sharded.objective, pipeline.assignment.objective);
  EXPECT_EQ(sharded.retries, pipeline.retries);
  EXPECT_EQ(sharded.model_size.variables, pipeline.model_size.variables);
  EXPECT_EQ(sharded.model_size.rows, pipeline.model_size.rows);
  EXPECT_EQ(sharded.model_size.nonzeros, pipeline.model_size.nonzeros);
  EXPECT_EQ(sharded.detailed.success, pipeline.detailed.success);
  ASSERT_EQ(sharded.detailed.fragments.size(),
            pipeline.detailed.fragments.size());
  for (std::size_t i = 0; i < sharded.detailed.fragments.size(); ++i) {
    const PlacedFragment& a = sharded.detailed.fragments[i];
    const PlacedFragment& b = pipeline.detailed.fragments[i];
    EXPECT_EQ(a.ds, b.ds) << i;
    EXPECT_EQ(a.type, b.type) << i;
    EXPECT_EQ(a.instance, b.instance) << i;
    EXPECT_EQ(a.config_index, b.config_index) << i;
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.ports, b.ports) << i;
    EXPECT_EQ(a.first_port, b.first_port) << i;
    EXPECT_EQ(a.offset_bits, b.offset_bits) << i;
    EXPECT_EQ(a.block_bits, b.block_bits) << i;
    EXPECT_EQ(a.words_covered, b.words_covered) << i;
    EXPECT_EQ(a.bits_covered, b.bits_covered) << i;
  }
}

TEST(ShardMapper, SingleDeviceBoardDegeneratesToPipeline) {
  const arch::Board board = arch::single_fpga_board("XCV300", 4);
  const design::Design design = fft_like_design();
  const ShardResult sharded = map_sharded(design, board);
  const PipelineResult pipeline = map_pipeline(design, board);
  ASSERT_EQ(sharded.status, lp::SolveStatus::kOptimal);
  expect_matches_pipeline(sharded, pipeline);
  EXPECT_EQ(sharded.stats.shards, 1);
  EXPECT_EQ(sharded.stats.stitch_cost, 0.0);
  EXPECT_EQ(sharded.device_of, (std::vector<int>{0, 0, 0, 0}));
}

TEST(ShardMapper, ExplicitSingleDeviceBoardAlsoDegenerates) {
  const arch::Board base = arch::single_fpga_board("XCV300", 4);
  arch::Board board("b");
  board.add_device({.name = "only", .inter_device_pins = 2});
  for (const arch::BankType& type : base.types()) board.add_bank_type(type);
  const design::Design design = fft_like_design();
  const ShardResult sharded = map_sharded(design, board);
  const PipelineResult pipeline = map_pipeline(design, board);
  ASSERT_EQ(sharded.status, lp::SolveStatus::kOptimal);
  expect_matches_pipeline(sharded, pipeline);
}

TEST(ShardMapper, ZeroBankDeviceIsSkippedNotCrashed) {
  // One populated device plus one declared-but-empty device: the empty
  // one is skipped, and the result is the single-device pipeline's.
  const arch::Board base = arch::single_fpga_board("XCV300", 4);
  arch::Board board("b");
  board.add_device({.name = "dead"});
  board.add_device({.name = "live", .inter_device_pins = 2});
  for (const arch::BankType& type : base.types()) board.add_bank_type(type);
  const design::Design design = fft_like_design();
  const ShardResult sharded = map_sharded(design, board);
  ASSERT_EQ(sharded.status, lp::SolveStatus::kOptimal);
  EXPECT_EQ(sharded.stats.skipped_devices, 1);
  EXPECT_EQ(sharded.stats.shards, 1);
  // Every structure lands on the live device (index 1).
  EXPECT_EQ(sharded.device_of, (std::vector<int>{1, 1, 1, 1}));
  expect_matches_pipeline(sharded, map_pipeline(design, board));

  // All-dead boards report infeasible instead of crashing.
  arch::Board dead("dead");
  dead.add_device({.name = "a"});
  dead.add_device({.name = "b"});
  const ShardResult hopeless = map_sharded(design, dead);
  EXPECT_EQ(hopeless.status, lp::SolveStatus::kInfeasible);
}

TEST(ShardMapper, ZeroBankDeviceAmongUsableMultiDevice) {
  // Two populated devices + one empty one: sharding proceeds over the
  // usable pair and nothing is ever placed on the empty device.
  const arch::Board base = arch::single_fpga_board("XCV300", 4);
  arch::Board board("b");
  board.add_device({.name = "fpga0", .inter_device_pins = 2});
  for (const arch::BankType& type : base.types()) board.add_bank_type(type);
  board.add_device({.name = "hole"});
  board.add_device({.name = "fpga2", .inter_device_pins = 2});
  for (const arch::BankType& type : base.types()) board.add_bank_type(type);

  const design::Design design = fft_like_design();
  const ShardResult r = map_sharded(design, board);
  ASSERT_TRUE(r.status == lp::SolveStatus::kOptimal ||
              r.status == lp::SolveStatus::kFeasible);
  EXPECT_EQ(r.stats.skipped_devices, 1);
  for (const int dev : r.device_of) EXPECT_NE(dev, 1);
  EXPECT_TRUE(
      validate_mapping(design, board, r.assignment, r.detailed).empty());
}

/// Devices {1, 2, 4} x fan-out/solver threads {1, 4}: the sharded
/// objective must be EXACTLY equal across thread counts for a fixed
/// device count (gap 0 makes the parallel B&B return the exact optimum,
/// and every candidate solve is deterministic per item regardless of
/// pool interleaving).
TEST(ShardMapper, DeterminismGridAcrossDevicesAndThreads) {
  const arch::Board base = arch::single_fpga_board("XCV1000", 16);
  workload::DesignGenOptions gen;
  gen.num_segments = 24;
  gen.seed = 2001;
  gen.target_port_utilization = 0.35;
  gen.target_bit_utilization = 0.25;
  const design::Design design = workload::generate_design(base, gen);

  for (const int devices : {1, 2, 4}) {
    const arch::Board board =
        devices == 1 ? base : arch::split_across_devices(base, devices);
    double reference = 0.0;
    std::vector<int> reference_types;
    bool first = true;
    for (const int threads : {1, 4}) {
      ShardOptions options;
      options.pipeline.global.mip.rel_gap = 0.0;
      options.pipeline.global.mip.abs_gap = 0.0;
      options.pipeline.global.mip.num_threads = threads;
      options.num_workers = static_cast<std::size_t>(threads);
      const ShardResult r = map_sharded(design, board, options);
      ASSERT_EQ(r.status, lp::SolveStatus::kOptimal)
          << devices << " devices, " << threads << " threads";
      EXPECT_TRUE(
          validate_mapping(design, board, r.assignment, r.detailed).empty())
          << devices << " devices, " << threads << " threads";
      if (first) {
        reference = r.objective;
        reference_types = r.assignment.type_of;
        first = false;
      } else {
        EXPECT_EQ(r.objective, reference)
            << devices << " devices, " << threads << " threads";
        EXPECT_EQ(r.assignment.type_of, reference_types)
            << devices << " devices, " << threads << " threads";
      }
    }
  }
}

TEST(ShardMapper, StitchCostMatchesCutAndPins) {
  // Recompute the stitch transfer term from the final device assignment:
  // every conflict pair split across devices pays its traffic times both
  // endpoints' inter-device pins.
  const arch::Board board =
      arch::split_across_devices(arch::single_fpga_board("XCV1000", 16), 2,
                                 /*inter_device_pins=*/3);
  workload::DesignGenOptions gen;
  gen.num_segments = 24;
  gen.seed = 2001;
  gen.target_port_utilization = 0.35;
  gen.target_bit_utilization = 0.25;
  const design::Design design = workload::generate_design(board, gen);
  const ShardResult r = map_sharded(design, board);
  ASSERT_EQ(r.status, lp::SolveStatus::kOptimal);
  ASSERT_GT(r.stats.shards, 1);

  double expected = 0.0;
  std::int64_t cut = 0;
  for (const auto& [a, b] : design.conflict_pairs()) {
    if (r.device_of[a] == r.device_of[b]) continue;
    ++cut;
    const double traffic =
        static_cast<double>(design::edge_traffic(design, a, b));
    expected +=
        traffic *
        static_cast<double>(
            board.device(static_cast<std::size_t>(r.device_of[a]))
                .inter_device_pins +
            board.device(static_cast<std::size_t>(r.device_of[b]))
                .inter_device_pins);
  }
  EXPECT_EQ(r.stats.cut_edges, cut);
  EXPECT_DOUBLE_EQ(r.stats.stitch_cost, expected);
  // The stitched objective includes the transfer term exactly once.
  EXPECT_DOUBLE_EQ(r.objective, r.assignment.objective);
  EXPECT_GE(r.objective, r.stats.stitch_cost);
}

TEST(ShardMapper, RepairMigratesOffUnplaceablePart) {
  // dev0 cannot host the small-but-wide structure (its narrow SRAM has
  // too few instances for a width split), and both parts' only feasible
  // device is dev1 — the stitch assignment is then infeasible and the
  // repair loop must merge the parts onto dev1.
  arch::Board board("b");
  board.add_device({.name = "narrow", .inter_device_pins = 2});
  arch::BankType narrow;
  narrow.name = "narrow_sram";
  narrow.instances = 2;
  narrow.ports = 1;
  narrow.read_latency = 2;
  narrow.write_latency = 2;
  narrow.pins_traversed = 2;
  narrow.configs.push_back({1024, 8});
  board.add_bank_type(narrow);
  board.add_device({.name = "wide", .inter_device_pins = 2});
  arch::BankType wide;
  wide.name = "wide_sram";
  wide.instances = 4;
  wide.ports = 1;
  wide.read_latency = 2;
  wide.write_latency = 2;
  wide.pins_traversed = 2;
  wide.configs.push_back({32768, 32});
  board.add_bank_type(wide);

  design::Design design("d");
  design.add(ds("big", 65536, 8));   // too many bits for the narrow device
  design.add(ds("wide16", 16, 32));  // too wide for the narrow device

  const ShardResult r = map_sharded(design, board);
  ASSERT_EQ(r.status, lp::SolveStatus::kOptimal);
  EXPECT_EQ(r.device_of, (std::vector<int>{1, 1}));
  EXPECT_EQ(r.stats.shards, 1);
  EXPECT_GE(r.stats.migrations, 1);
  EXPECT_GE(r.stats.repair_rounds, 1);
  EXPECT_TRUE(
      validate_mapping(design, board, r.assignment, r.detailed).empty());
}

TEST(ShardMapper, TrulyUnmappableDesignReportsInfeasible) {
  // A structure too big for every device in total bits: the repair loop
  // must conclude infeasible (quickly — singleton parts stop migration).
  const arch::Board board =
      arch::split_across_devices(arch::single_fpga_board("XCV300", 4), 2);
  design::Design design("d");
  design.add(ds("vast", 1 << 22, 32));
  design.add(ds("tiny", 64, 8));
  design.set_all_conflicting();
  const ShardResult r = map_sharded(design, board);
  EXPECT_EQ(r.status, lp::SolveStatus::kInfeasible);
}

TEST(ShardMapper, CancelledBeforeStartReturnsCancelled) {
  const arch::Board board =
      arch::split_across_devices(arch::single_fpga_board("XCV300", 4), 2);
  const design::Design design = fft_like_design();
  ShardOptions options;
  auto token = std::make_shared<support::CancelToken>();
  token->cancel();
  options.pipeline.global.mip.cancel_token = token;
  const ShardResult r = map_sharded(design, board, options);
  EXPECT_EQ(r.status, lp::SolveStatus::kCancelled);
}

}  // namespace
}  // namespace gmm::mapping
