// Portfolio racing determinism wall.
//
// The contracts under test (see portfolio.hpp):
//  * a 1-lane portfolio is bitwise-identical to calling the lane's
//    mapper directly — the child cancel token only adds polls, which
//    never alter the search path — across pool worker counts;
//  * with N lanes at gap 0, WHOEVER wins proves the same optimum, so
//    the returned objective equals the plain pipeline's, across worker
//    counts;
//  * a pre-cancelled parent token stops every lane before it starts;
//  * a pre-expired parent deadline surfaces as kTimeLimit, not as a
//    cancellation.
#include "mapping/portfolio.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "mapping/pipeline.hpp"
#include "support/cancellation.hpp"
#include "support/thread_pool.hpp"
#include "workload/table3_suite.hpp"

namespace gmm::mapping {
namespace {

workload::Table3Instance small_instance() {
  return workload::build_instance(workload::table3_points()[1]);
}

PipelineOptions gap0_options() {
  PipelineOptions options;
  options.global.mip.rel_gap = 0.0;
  options.global.mip.abs_gap = 0.0;
  return options;
}

TEST(Portfolio, OneLaneBitwiseIdenticalToPlainPipeline) {
  const workload::Table3Instance instance = small_instance();
  const PipelineOptions options = gap0_options();
  const PipelineResult plain =
      map_pipeline(instance.design, instance.board, options);
  ASSERT_EQ(plain.status, lp::SolveStatus::kOptimal);

  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    support::ThreadPool pool(workers);
    PortfolioOptions race;
    race.lanes.push_back(
        {.name = "global", .kind = LaneKind::kGlobal, .pipeline = options});
    const PortfolioResult r =
        solve_portfolio(pool, instance.design, instance.board, race);

    ASSERT_EQ(r.winner, 0) << "workers " << workers;
    EXPECT_EQ(r.winner_name, "global");
    EXPECT_EQ(r.status, plain.status) << "workers " << workers;
    EXPECT_EQ(r.assignment.type_of, plain.assignment.type_of);
    EXPECT_DOUBLE_EQ(r.assignment.objective, plain.assignment.objective);
    EXPECT_EQ(r.detailed.fragments.size(), plain.detailed.fragments.size());
    EXPECT_EQ(r.mip.nodes, plain.mip.nodes) << "workers " << workers;
    EXPECT_EQ(r.effort.bnb_nodes, plain.effort.bnb_nodes);
    EXPECT_EQ(r.effort.lp_iterations, plain.effort.lp_iterations);
    EXPECT_EQ(r.retries, plain.retries);
    ASSERT_EQ(r.lanes.size(), 1u);
    EXPECT_TRUE(r.lanes[0].proved);
    EXPECT_FALSE(r.lanes[0].cancelled);
    EXPECT_EQ(r.lanes_cancelled, 0);
  }
}

TEST(Portfolio, RacingNeverChangesTheGap0Objective) {
  const workload::Table3Instance instance = small_instance();
  const PipelineOptions options = gap0_options();
  const PipelineResult plain =
      map_pipeline(instance.design, instance.board, options);
  ASSERT_EQ(plain.status, lp::SolveStatus::kOptimal);

  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    support::ThreadPool pool(workers);
    PortfolioOptions race;
    race.lanes =
        default_portfolio_lanes(instance.board, /*lanes=*/3, options);
    const PortfolioResult r =
        solve_portfolio(pool, instance.design, instance.board, race);

    // The winner identity may vary with timing; the proved objective
    // must not.
    ASSERT_GE(r.winner, 0) << "workers " << workers;
    EXPECT_EQ(r.status, lp::SolveStatus::kOptimal);
    EXPECT_TRUE(r.detailed.success);
    EXPECT_DOUBLE_EQ(r.assignment.objective, plain.assignment.objective)
        << "workers " << workers << " winner " << r.winner_name;
    EXPECT_EQ(r.lanes.size(), 3u);
    EXPECT_GE(r.first_prove_seconds, 0.0);
    EXPECT_LE(r.first_prove_seconds, r.seconds);
  }
}

TEST(Portfolio, PreCancelledParentStopsEveryLane) {
  const workload::Table3Instance instance = small_instance();
  PortfolioOptions race;
  race.cancel_token = std::make_shared<support::CancelToken>();
  race.cancel_token->cancel();
  race.lanes = default_portfolio_lanes(instance.board, 3, gap0_options());
  const PortfolioResult r =
      solve_portfolio(instance.design, instance.board, race);

  EXPECT_EQ(r.winner, -1);
  EXPECT_EQ(r.status, lp::SolveStatus::kCancelled);
  for (const LaneReport& lane : r.lanes) {
    EXPECT_FALSE(lane.ran) << lane.name;
    EXPECT_TRUE(lane.cancelled) << lane.name;
    EXPECT_EQ(lane.stop_reason, lp::SolveStatus::kCancelled) << lane.name;
    EXPECT_EQ(lane.effort.bnb_nodes, 0) << lane.name;
  }
}

TEST(Portfolio, PreExpiredParentDeadlineReportsTimeLimit) {
  const workload::Table3Instance instance = small_instance();
  PortfolioOptions race;
  race.cancel_token = std::make_shared<support::CancelToken>();
  race.cancel_token->set_deadline_after_seconds(0.0);
  race.lanes = default_portfolio_lanes(instance.board, 2, gap0_options());
  const PortfolioResult r =
      solve_portfolio(instance.design, instance.board, race);

  EXPECT_EQ(r.winner, -1);
  for (const LaneReport& lane : r.lanes) {
    EXPECT_FALSE(lane.ran) << lane.name;
    // Budget exhaustion, not a race loss: the report must say so.
    EXPECT_EQ(lane.stop_reason, lp::SolveStatus::kTimeLimit) << lane.name;
  }
}

TEST(Portfolio, EmptyPortfolioIsInfeasibleWithoutRunning) {
  const workload::Table3Instance instance = small_instance();
  const PortfolioResult r =
      solve_portfolio(instance.design, instance.board, PortfolioOptions{});
  EXPECT_EQ(r.winner, -1);
  EXPECT_EQ(r.status, lp::SolveStatus::kInfeasible);
  EXPECT_TRUE(r.lanes.empty());
}

TEST(Portfolio, DefaultMenuSharesTheGapContract) {
  const workload::Table3Instance instance = small_instance();
  PipelineOptions base;
  base.global.mip.rel_gap = 0.0;
  base.global.mip.abs_gap = 0.0;
  base.global.mip.time_limit_seconds = 42.0;
  const std::vector<PortfolioLane> lanes =
      default_portfolio_lanes(instance.board, kMaxPortfolioLanes, base);
  ASSERT_EQ(static_cast<int>(lanes.size()), kMaxPortfolioLanes);
  for (const PortfolioLane& lane : lanes) {
    // Search knobs may differ; the optimality contract may not.
    EXPECT_DOUBLE_EQ(lane.pipeline.global.mip.rel_gap, 0.0) << lane.name;
    EXPECT_DOUBLE_EQ(lane.pipeline.global.mip.abs_gap, 0.0) << lane.name;
    EXPECT_DOUBLE_EQ(lane.pipeline.global.mip.time_limit_seconds, 42.0)
        << lane.name;
  }
}

}  // namespace
}  // namespace gmm::mapping
