#include "mapping/preprocess.hpp"

#include <gtest/gtest.h>

#include "support/arithmetic.hpp"
#include "support/rng.hpp"

namespace gmm::mapping {
namespace {

design::DataStructure ds(std::int64_t depth, std::int64_t width) {
  design::DataStructure s;
  s.name = "ds";
  s.depth = depth;
  s.width = width;
  return s;
}

/// The 3-port, four-configuration bank of the paper's Figure-2 example.
arch::BankType figure2_bank(std::int64_t instances = 16) {
  arch::BankType t;
  t.name = "fig2";
  t.instances = instances;
  t.ports = 3;
  t.configs = {{128, 1}, {64, 2}, {32, 4}, {16, 8}};
  return t;
}

// ---- Figure 3: consumed_ports --------------------------------------------

TEST(ConsumedPorts, Figure3Semantics) {
  // 16 words on a 128-deep bank with 3 ports: fraction 1/8 -> 1 port.
  EXPECT_EQ(consumed_ports(16, 128, 3), 1);
  // 7 words round to 8; 8/16 = 1/2 of 3 ports -> 2 ports.
  EXPECT_EQ(consumed_ports(7, 16, 3), 2);
  // 7 words round to 8; 8/128 of 3 ports -> 1 port.
  EXPECT_EQ(consumed_ports(7, 128, 3), 1);
  // Full depth consumes every port.
  EXPECT_EQ(consumed_ports(128, 128, 3), 3);
  EXPECT_EQ(consumed_ports(16, 16, 2), 2);
  // Empty fragment consumes nothing.
  EXPECT_EQ(consumed_ports(0, 128, 3), 0);
}

TEST(ConsumedPorts, DualPortExactness) {
  // For Pt = 2 (the paper: "optimal for Pt = 2"): halves cost 1 port.
  EXPECT_EQ(consumed_ports(8, 16, 2), 1);
  EXPECT_EQ(consumed_ports(4, 16, 2), 1);
  EXPECT_EQ(consumed_ports(9, 16, 2), 2);  // rounds to 16 = full
  EXPECT_EQ(consumed_ports(1, 16, 2), 1);
}

TEST(ConsumedPorts, Table2OverestimationForThreePorts) {
  // The paper's Table-2 discussion: an 8-word fragment on a 3-port,
  // 16-word bank consumes 2 ports, so (8, 8) needs 4 ports and is
  // rejected on a 3-port bank.
  EXPECT_EQ(consumed_ports(8, 16, 3), 2);
  EXPECT_GT(consumed_ports(8, 16, 3) * 2, 3);
}

// ---- Figure 2: the worked 55x17 example -----------------------------------

TEST(PlanPlacement, Figure2WorkedExample) {
  const PlacementPlan plan = plan_placement(ds(55, 17), figure2_bank());
  ASSERT_TRUE(plan.feasible);
  // alpha: no width >= 17, so the widest config (16x8, index 3).
  EXPECT_EQ(plan.alpha, 3);
  // beta: width remainder 1 -> config 128x1 (index 0).
  EXPECT_EQ(plan.beta, 0);
  // CP components: FP=18, WP=3, DP=4, WDP=1 (total 26).
  EXPECT_EQ(plan.fp, 18);
  EXPECT_EQ(plan.wp, 3);
  EXPECT_EQ(plan.dp, 4);
  EXPECT_EQ(plan.wdp, 1);
  EXPECT_EQ(plan.cp, 26);
  // CW = 2*8 + 1 = 17; CD = 3*16 + 8 = 56.
  EXPECT_EQ(plan.cw, 17);
  EXPECT_EQ(plan.cd, 56);
  // Figure 2 shows 12 instances: 6 full + 3 column + 2 row + 1 corner.
  EXPECT_EQ(plan.total_fragments(), 12);
  ASSERT_EQ(plan.groups.size(), 4u);
  EXPECT_EQ(plan.groups[0].kind, FragmentKind::kFull);
  EXPECT_EQ(plan.groups[0].count, 6);
  EXPECT_EQ(plan.groups[0].ports_each, 3);
  EXPECT_EQ(plan.groups[1].kind, FragmentKind::kWidthColumn);
  EXPECT_EQ(plan.groups[1].count, 3);
  EXPECT_EQ(plan.groups[1].ports_each, 1);
  EXPECT_EQ(plan.groups[2].kind, FragmentKind::kDepthRow);
  EXPECT_EQ(plan.groups[2].count, 2);
  EXPECT_EQ(plan.groups[2].ports_each, 2);
  EXPECT_EQ(plan.groups[3].kind, FragmentKind::kCorner);
  EXPECT_EQ(plan.groups[3].count, 1);
  EXPECT_EQ(plan.groups[3].ports_each, 1);
}

TEST(PlanPlacement, Figure2FreeBitsAnnotations) {
  // Figure 2 annotates unused bits per partially-used instance:
  // column instances (128x1 holding 16 words): 112 bits free;
  // row instances (16x8 holding 8 of 16 words): 64 bits free;
  // corner (128x1 holding 8 words): 120 bits free.
  const PlacementPlan plan = plan_placement(ds(55, 17), figure2_bank());
  const std::int64_t capacity = figure2_bank().capacity_bits();
  EXPECT_EQ(capacity - plan.groups[1].block_bits, 112);
  EXPECT_EQ(capacity - plan.groups[2].block_bits, 64);
  EXPECT_EQ(capacity - plan.groups[3].block_bits, 120);
}

// ---- structural edge cases -------------------------------------------------

TEST(PlanPlacement, ExactFitSingleInstance) {
  // 16x8 structure == one full instance in config 16x8.
  const PlacementPlan plan = plan_placement(ds(16, 8), figure2_bank());
  EXPECT_EQ(plan.cp, 3);  // all ports of one instance
  EXPECT_EQ(plan.cw, 8);
  EXPECT_EQ(plan.cd, 16);
  EXPECT_EQ(plan.total_fragments(), 1);
  EXPECT_EQ(plan.groups[0].kind, FragmentKind::kFull);
}

TEST(PlanPlacement, NarrowStructureUsesSmallestSufficientWidth) {
  // Width 3 -> alpha is the 32x4 config; depth 20 < 32 -> corner... but
  // with no full rows/columns everything is the single corner fragment.
  const PlacementPlan plan = plan_placement(ds(20, 3), figure2_bank());
  EXPECT_EQ(plan.alpha, 2);           // 32x4
  EXPECT_EQ(plan.beta, 2);            // remainder 3 -> same config
  EXPECT_EQ(plan.fp, 0);
  EXPECT_EQ(plan.wp, 0);
  EXPECT_EQ(plan.dp, 0);
  // 20 words round to 32 = full depth -> all 3 ports.
  EXPECT_EQ(plan.wdp, 3);
  EXPECT_EQ(plan.cw, 4);
  EXPECT_EQ(plan.cd, 32);
  EXPECT_EQ(plan.total_fragments(), 1);
}

TEST(PlanPlacement, ExactWidthMultipleNoRemainder) {
  // 32 words x 16 bits on the fig2 bank: width = 2 alpha columns (8+8),
  // no width remainder, depth 32 = 2 full rows of 16.
  const PlacementPlan plan = plan_placement(ds(32, 16), figure2_bank());
  EXPECT_EQ(plan.alpha, 3);
  EXPECT_EQ(plan.beta, -1);
  EXPECT_EQ(plan.fp, 4 * 3);
  EXPECT_EQ(plan.wp, 0);
  EXPECT_EQ(plan.dp, 0);
  EXPECT_EQ(plan.wdp, 0);
  EXPECT_EQ(plan.cw, 16);
  EXPECT_EQ(plan.cd, 32);
}

TEST(PlanPlacement, SingleConfigurationBank) {
  arch::BankType sram;
  sram.name = "sram";
  sram.instances = 2;
  sram.ports = 1;
  sram.configs = {{32768, 32}};
  const PlacementPlan plan = plan_placement(ds(1000, 24), sram);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.alpha, 0);
  EXPECT_EQ(plan.cp, 1);  // 1024/32768 of 1 port -> 1
  EXPECT_EQ(plan.cw, 32);
  EXPECT_EQ(plan.cd, 1024);
  EXPECT_EQ(plan.total_fragments(), 1);
}

TEST(PlanPlacement, InfeasibleWhenTooBig) {
  // 8 instances x 4096 bits = 32768 bits total; a 64Kbit structure
  // cannot fit.
  const PlacementPlan plan =
      plan_placement(ds(4096, 16), figure2_bank(/*instances=*/8));
  EXPECT_FALSE(plan.feasible);
}

TEST(PlanPlacement, PortBoundInfeasibility) {
  // 2 instances x 3 ports = 6 ports; a structure needing 4 full
  // instances (12 ports) must be infeasible.
  const PlacementPlan plan =
      plan_placement(ds(64, 8), figure2_bank(/*instances=*/2));
  EXPECT_FALSE(plan.feasible);
}

// ---- property sweep ---------------------------------------------------------

class PlanPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PlanPropertyTest, InvariantsHoldOnRandomShapes) {
  support::Rng rng(4200 + GetParam());
  const arch::BankType bank = figure2_bank(/*instances=*/1 << 20);
  for (int iter = 0; iter < 200; ++iter) {
    const std::int64_t depth = rng.uniform_int(1, 5000);
    const std::int64_t width = rng.uniform_int(1, 64);
    const PlacementPlan plan = plan_placement(ds(depth, width), bank);

    // CP decomposition identity.
    EXPECT_EQ(plan.cp, plan.fp + plan.wp + plan.dp + plan.wdp);
    // Fragment coverage identity: data bits covered exactly once.
    std::int64_t covered = 0;
    for (const FragmentGroup& g : plan.groups) {
      covered += g.count * g.words_covered * g.bits_covered;
      EXPECT_GT(g.ports_each, 0);
      EXPECT_LE(g.ports_each, bank.ports);
      EXPECT_TRUE(support::is_pow2(g.block_bits));
      EXPECT_LE(g.block_bits, bank.capacity_bits());
      // Port fraction dominates the capacity fraction (the invariant
      // that lets detailed mapping bin-pack on ports alone).
      EXPECT_LE(g.block_bits * bank.ports,
                g.ports_each * bank.capacity_bits());
    }
    EXPECT_EQ(covered, depth * width);
    // Consumed width/depth bound the real dimensions.
    EXPECT_GE(plan.cw, std::min(width, bank.max_width()));
    EXPECT_GE(plan.cd * plan.cw, depth * width);
    // Fragment ports sum to CP.
    std::int64_t ports = 0;
    for (const FragmentGroup& g : plan.groups) ports += g.count * g.ports_each;
    EXPECT_EQ(ports, plan.cp);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PlanPropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace gmm::mapping
