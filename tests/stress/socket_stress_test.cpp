// Socket-transport stress (CTest label "stress"; the sanitizer CI lane
// runs it): spawn one real `mapper_serve --listen` and hammer it with
// waves of concurrent clients whose behavior is randomized per seed —
// clean sessions, batch-then-half-close sessions, and clients that
// DISCONNECT mid-request with solves still in flight.  The server must
//
//   * answer every request of every well-behaved client (no lost or
//     cross-wired responses),
//   * survive abrupt disconnects (cancelling orphaned work, dropping
//     orphaned responses) without wedging the remaining clients,
//   * keep exact admission accounting through the chaos,
//   * drain and exit 0 at the end,
//
// all ASan+UBSan-clean in CI.  Seeds are fixed so a failure reproduces.
#include <gtest/gtest.h>

#ifndef _WIN32
#include <unistd.h>
#endif

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "arch/arch_io.hpp"
#include "design/design_io.hpp"
#include "service/json.hpp"
#include "service/process_client.hpp"
#include "service/protocol.hpp"
#include "support/rng.hpp"
#include "workload/workload_gen.hpp"

namespace gmm::service {
namespace {

#ifndef GMM_MAPPER_SERVE_PATH
#define GMM_MAPPER_SERVE_PATH ""
#endif

constexpr double kReadTimeout = 120.0;

arch::Board stress_board() {
  return *workload::board_from_totals({.banks = 23, .ports = 45,
                                       .configs = 100});
}

std::string random_design_text(support::Rng& rng) {
  workload::DesignGenOptions gen;
  gen.num_segments = rng.uniform_int(3, 10);
  gen.seed = rng.next_u64();
  return design::design_to_string(
      workload::generate_design(stress_board(), gen));
}

/// One client session; returns false only on a contract violation (a
/// well-behaved client missing a response).  `deserter` sessions close
/// the socket with requests still in flight — the server owes them
/// nothing, but must not wedge.
bool run_session(const std::string& endpoint, std::uint64_t seed,
                 bool deserter, std::atomic<int>& failures) {
  support::Rng rng(seed);
  ProcessClient client;
  if (!client.connect(endpoint)) {
    ++failures;
    ADD_FAILURE() << "seed " << seed << ": cannot connect";
    return false;
  }
  const int requests = static_cast<int>(rng.uniform_int(1, 4));
  std::vector<std::string> expected;
  for (int i = 0; i < requests; ++i) {
    const std::string id =
        "s" + std::to_string(seed) + "-" + std::to_string(i);
    JsonObject request;
    const int profile = static_cast<int>(rng.uniform_int(0, 5));
    if (profile == 5) {
      // A knob the server must reject — still exactly one response.
      request["v"] = 2;
      request["id"] = id;
      request["method"] = std::string("map");
      request["design_text"] = std::string("d");
      JsonObject options;
      options["gap"] = 2.0;
      request["options"] = Json(std::move(options));
    } else {
      request["id"] = id;
      request["method"] = std::string("map");
      request["design_text"] = random_design_text(rng);
      if (profile == 1) {
        // Tight deadline: timeout and ok both legal, response mandatory.
        request["deadline_ms"] = rng.uniform_int(0, 25);
      }
      if (profile == 2) request["v"] = 2;
    }
    if (!client.send_line(Json(std::move(request)).dump())) {
      ++failures;
      ADD_FAILURE() << "seed " << seed << ": send failed";
      return false;
    }
    expected.push_back(id);
  }
  if (deserter) {
    // Vanish mid-request: maybe half-close first, maybe just destruct
    // (both fd halves close; the server sees EOF/EPIPE at some point
    // between admission, solve, and response write).
    if (rng.bernoulli(0.5)) client.close_stdin();
    std::this_thread::sleep_for(
        std::chrono::microseconds(rng.uniform_int(0, 3000)));
    return true;  // the ProcessClient destructor slams the socket
  }
  if (rng.bernoulli(0.5)) client.close_stdin();  // batch idiom
  std::size_t got = 0;
  while (got < expected.size()) {
    const auto line = client.read_line(kReadTimeout);
    if (!line.has_value()) {
      ++failures;
      ADD_FAILURE() << "seed " << seed << ": missing "
                    << (expected.size() - got) << " response(s)";
      return false;
    }
    const JsonParseResult parsed = parse_json(*line);
    Response response;
    if (!parsed.ok || !Response::from_json(parsed.value, response) ||
        response.method != "map") {
      ++failures;
      ADD_FAILURE() << "seed " << seed << ": bad response " << *line;
      return false;
    }
    // Routing: only OUR ids may arrive on this connection, each once.
    bool known = false;
    for (std::size_t i = got; i < expected.size(); ++i) {
      if (expected[i] == response.id) {
        std::swap(expected[got], expected[i]);
        known = true;
        break;
      }
    }
    if (!known) {
      ++failures;
      ADD_FAILURE() << "seed " << seed << ": foreign/duplicate response "
                    << response.id;
      return false;
    }
    ++got;
  }
  return true;
}

TEST(SocketStress, ConcurrentClientsWithRandomDisconnects) {
  if (std::string(GMM_MAPPER_SERVE_PATH).empty()) {
    GTEST_SKIP() << "mapper_serve path not configured";
  }
  const std::string board_file = "socket_stress_test_board.txt";
  {
    std::ofstream out(board_file);
    ASSERT_TRUE(out.good());
    arch::write_board(out, stress_board());
  }
  long pid = 0;
#ifndef _WIN32
  pid = static_cast<long>(::getpid());
#endif
  const std::string socket_path =
      "/tmp/gmm_stress_" + std::to_string(pid) + ".sock";
  ProcessClient server;
  if (!server.start(GMM_MAPPER_SERVE_PATH,
                    {board_file, "--workers", "4", "--queue", "32",
                     "--listen", socket_path})) {
    GTEST_SKIP() << "cannot spawn subprocesses on this platform";
  }
  const auto listening = server.read_line(kReadTimeout);
  ASSERT_TRUE(listening.has_value()) << "no listening event";

  constexpr int kWaves = 3;
  constexpr int kClientsPerWave = 12;
  std::atomic<int> failures{0};
  support::Rng seeder(20260808);
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> threads;
    threads.reserve(kClientsPerWave);
    for (int c = 0; c < kClientsPerWave; ++c) {
      const std::uint64_t seed = seeder.next_u64() % 1'000'000;
      // A third of each wave deserts mid-request.
      const bool deserter = c % 3 == 0;
      threads.emplace_back([&, seed, deserter] {
        run_session(socket_path, seed, deserter, failures);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  EXPECT_EQ(failures.load(), 0);

  // The server must still be fully alive: exact accounting via a final
  // well-behaved client.  Every admitted request got a terminal status
  // (completed counts all of accepted, including deserters' orphans).
  ProcessClient audit;
  ASSERT_TRUE(audit.connect(socket_path));
  Response stats;
  for (int attempt = 0;; ++attempt) {
    const std::string id = "audit" + std::to_string(attempt);
    ASSERT_TRUE(audit.send_line(
        R"({"id":")" + id + R"(","method":"stats"})"));
    const auto line = audit.read_line(kReadTimeout);
    ASSERT_TRUE(line.has_value()) << "server wedged after stress";
    const JsonParseResult parsed = parse_json(*line);
    ASSERT_TRUE(parsed.ok) << *line;
    ASSERT_TRUE(Response::from_json(parsed.value, stats)) << *line;
    ASSERT_TRUE(stats.has_stats);
    // Deserters' orphaned solves are cancelled asynchronously; give the
    // workers a moment to emit those terminal responses before holding
    // the books to account.
    if (stats.stats.accepted == stats.stats.completed || attempt >= 200) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(stats.stats.accepted, stats.stats.completed)
      << "orphaned requests never terminated";
  EXPECT_EQ(stats.stats.transport.connections_opened,
            kWaves * kClientsPerWave + 1);
  EXPECT_GE(stats.stats.transport.connections_closed,
            kWaves * kClientsPerWave - 1);
  EXPECT_GT(stats.stats.transport.requests, 0);
  ASSERT_TRUE(audit.send_line(R"({"method":"shutdown"})"));
  const auto ack = audit.read_line(kReadTimeout);
  EXPECT_TRUE(ack.has_value()) << "no shutdown ack";
  EXPECT_EQ(server.wait_exit(60.0), 0);
  std::remove(board_file.c_str());
}

TEST(SocketStress, DisconnectStormAccountingExact) {
  // Every client is a deserter: waves of connections that send requests
  // and slam the socket with solves still in flight.  This drives the
  // round-robin dispatch cursor through the pathological rotations —
  // the served connection dying in its own slot, multiple connections
  // dying inside one dispatch pass, the cursor's id re-lookup hitting
  // freshly-erased entries (the cursor audit in socket_server.cpp pins
  // this test by name).  Afterwards the server must still answer a
  // well-behaved client with EXACT books: every admitted request
  // reached a terminal status, no double-dispatch, no wedged sweep.
  if (std::string(GMM_MAPPER_SERVE_PATH).empty()) {
    GTEST_SKIP() << "mapper_serve path not configured";
  }
  const std::string board_file = "socket_storm_test_board.txt";
  {
    std::ofstream out(board_file);
    ASSERT_TRUE(out.good());
    arch::write_board(out, stress_board());
  }
  long pid = 0;
#ifndef _WIN32
  pid = static_cast<long>(::getpid());
#endif
  const std::string socket_path =
      "/tmp/gmm_storm_" + std::to_string(pid) + ".sock";
  ProcessClient server;
  if (!server.start(GMM_MAPPER_SERVE_PATH,
                    {board_file, "--workers", "2", "--queue", "64",
                     "--listen", socket_path})) {
    GTEST_SKIP() << "cannot spawn subprocesses on this platform";
  }
  ASSERT_TRUE(server.read_line(kReadTimeout).has_value())
      << "no listening event";

  constexpr int kWaves = 4;
  constexpr int kClientsPerWave = 10;
  std::atomic<int> failures{0};
  support::Rng seeder(8082026);
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> threads;
    threads.reserve(kClientsPerWave);
    for (int c = 0; c < kClientsPerWave; ++c) {
      const std::uint64_t seed = seeder.next_u64() % 1'000'000;
      threads.emplace_back([&, seed] {
        run_session(socket_path, seed, /*deserter=*/true, failures);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  EXPECT_EQ(failures.load(), 0);

  ProcessClient audit;
  ASSERT_TRUE(audit.connect(socket_path));
  Response stats;
  for (int attempt = 0;; ++attempt) {
    const std::string id = "storm-audit" + std::to_string(attempt);
    ASSERT_TRUE(
        audit.send_line(R"({"id":")" + id + R"(","method":"stats"})"));
    const auto line = audit.read_line(kReadTimeout);
    ASSERT_TRUE(line.has_value()) << "server wedged after storm";
    const JsonParseResult parsed = parse_json(*line);
    ASSERT_TRUE(parsed.ok) << *line;
    ASSERT_TRUE(Response::from_json(parsed.value, stats)) << *line;
    ASSERT_TRUE(stats.has_stats);
    if (stats.stats.accepted == stats.stats.completed || attempt >= 200) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(stats.stats.accepted, stats.stats.completed)
      << "orphaned requests never terminated";
  EXPECT_EQ(stats.stats.transport.connections_opened,
            kWaves * kClientsPerWave + 1);
  // Every storm connection is gone; only the auditor may still be open.
  EXPECT_GE(stats.stats.transport.connections_closed,
            kWaves * kClientsPerWave);
  ASSERT_TRUE(audit.send_line(R"({"method":"shutdown"})"));
  EXPECT_TRUE(audit.read_line(kReadTimeout).has_value()) << "no shutdown ack";
  EXPECT_EQ(server.wait_exit(60.0), 0);
  std::remove(board_file.c_str());
}

}  // namespace
}  // namespace gmm::service
