// Stress tier (CTest label "stress"; the sanitizer CI lane runs it):
// hammer the ThreadPool-backed serving paths with many small requests
// under randomized cancellation and deadline injection, and assert the
// liveness contracts that matter for a long-lived server —
//
//   * every admitted request terminates with exactly one definite status
//     (no lost, duplicated, or indefinite responses),
//   * the service drains (no hang, no stuck worker),
//   * map_batch returns a definite per-item status even when its shared
//     token fires mid-batch,
//
// all under ASan+UBSan leak checking in CI.  Schedules are randomized
// but the SEEDS are fixed, so a failure reproduces.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "design/design_io.hpp"
#include "mapping/batch_mapper.hpp"
#include "service/mapping_service.hpp"
#include "support/cancellation.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "workload/workload_gen.hpp"

namespace gmm::service {
namespace {

arch::Board stress_board() {
  return *workload::board_from_totals({.banks = 23, .ports = 45,
                                       .configs = 100});
}

std::string random_design_text(support::Rng& rng) {
  workload::DesignGenOptions gen;
  gen.num_segments = rng.uniform_int(3, 10);
  gen.seed = rng.next_u64();
  return design::design_to_string(
      workload::generate_design(stress_board(), gen));
}

TEST(ServiceStress, RandomizedCancelAndDeadlineInjection) {
  constexpr int kRequests = 60;
  support::Rng rng(20260729);

  std::mutex mutex;
  std::map<std::string, std::vector<ResponseStatus>> terminal;
  MappingService service(
      {stress_board()}, {.workers = 4, .max_pending = 12},
      [&mutex, &terminal](const Response& r) {
        if (r.method != "map") return;
        const std::scoped_lock lock(mutex);
        terminal[r.id].push_back(r.status);
      });

  // Pre-generate so the submit loop is tight enough to overflow the
  // bounded queue now and then (that path must count too).
  std::vector<Request> requests;
  std::vector<bool> cancel_plan;
  for (int i = 0; i < kRequests; ++i) {
    Request r;
    r.method = Method::kMap;
    r.id = "req" + std::to_string(i);
    r.map.design_text = random_design_text(rng);
    const int profile = static_cast<int>(rng.uniform_int(0, 3));
    if (profile == 1) {
      r.map.deadline_ms = static_cast<double>(rng.uniform_int(0, 25));
    }
    cancel_plan.push_back(profile == 2);
    requests.push_back(std::move(r));
  }

  // A second thread fires cancels while the main thread keeps admitting:
  // cancels race admission, solving, and completion — all must be safe.
  std::atomic<int> submitted{0};
  std::thread canceller([&] {
    support::Rng cancel_rng(7);
    int next = 0;
    while (next < kRequests) {
      const int limit = submitted.load(std::memory_order_acquire);
      for (; next < limit; ++next) {
        if (!cancel_plan[static_cast<std::size_t>(next)]) continue;
        std::this_thread::sleep_for(std::chrono::microseconds(
            cancel_rng.uniform_int(0, 2000)));
        Request cancel;
        cancel.method = Method::kCancel;
        cancel.target = "req" + std::to_string(next);
        service.handle(cancel);
      }
      std::this_thread::yield();
    }
  });

  for (int i = 0; i < kRequests; ++i) {
    service.handle(requests[static_cast<std::size_t>(i)]);
    submitted.store(i + 1, std::memory_order_release);
    if (rng.bernoulli(0.3)) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(rng.uniform_int(0, 3000)));
    }
  }
  canceller.join();
  service.drain();

  // Exactly-once, definite-status accounting.
  const std::scoped_lock lock(mutex);
  std::int64_t rejected = 0;
  for (int i = 0; i < kRequests; ++i) {
    const std::string id = "req" + std::to_string(i);
    ASSERT_TRUE(terminal.contains(id)) << id << " never answered";
    ASSERT_EQ(terminal[id].size(), 1u) << id << " answered twice";
    const ResponseStatus status = terminal[id][0];
    EXPECT_TRUE(status == ResponseStatus::kOk ||
                status == ResponseStatus::kTimeout ||
                status == ResponseStatus::kCancelled ||
                status == ResponseStatus::kRejected)
        << id << " got status " << to_string(status);
    if (status == ResponseStatus::kRejected) ++rejected;
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted + stats.rejected, kRequests);
  EXPECT_EQ(stats.completed, stats.accepted);
  EXPECT_EQ(stats.rejected, rejected);
}

TEST(ServiceStress, RepeatedDrainCyclesStayClean) {
  // Several admit-drain cycles against one service: leftover state from a
  // cycle (a stuck token, a miscounted pending_) would surface here.
  support::Rng rng(99);
  std::atomic<int> answered{0};
  MappingService service({stress_board()}, {.workers = 2},
                         [&answered](const Response& r) {
                           if (r.method == "map") {
                             answered.fetch_add(1,
                                                std::memory_order_relaxed);
                           }
                         });
  int sent = 0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (int i = 0; i < 6; ++i) {
      Request r;
      r.method = Method::kMap;
      r.id = "c" + std::to_string(cycle) + "_" + std::to_string(i);
      r.map.design_text = random_design_text(rng);
      if (i % 3 == 1) r.map.deadline_ms = 1.0;
      service.handle(r);
      ++sent;
    }
    service.drain();
    EXPECT_EQ(answered.load(), sent) << "cycle " << cycle;
  }
}

TEST(ServiceStress, MapBatchWithMidBatchCancellation) {
  // The batch driver under the same token plumbing: a shared token fires
  // while the pool is mid-batch.  Every item must come back with a
  // definite status and the batch call must return (wait_idle liveness).
  const arch::Board board = stress_board();
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    support::Rng rng(seed);
    std::vector<design::Design> designs;
    for (int i = 0; i < 24; ++i) {
      workload::DesignGenOptions gen;
      gen.num_segments = rng.uniform_int(3, 8);
      gen.seed = rng.next_u64();
      designs.push_back(workload::generate_design(board, gen));
    }
    std::vector<mapping::BatchItem> items;
    for (const design::Design& d : designs) {
      items.push_back({.design = &d, .board = &board});
    }

    auto token = std::make_shared<support::CancelToken>();
    mapping::PipelineOptions options;
    options.global.mip.cancel_token = token;

    support::ThreadPool pool(4);
    std::thread canceller([&token, seed] {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(2 * static_cast<long>(seed)));
      token->cancel();
    });
    const mapping::BatchResult batch =
        mapping::map_batch(pool, items, options);
    canceller.join();

    ASSERT_EQ(batch.results.size(), items.size());
    for (const mapping::PipelineResult& r : batch.results) {
      EXPECT_TRUE(r.status == lp::SolveStatus::kOptimal ||
                  r.status == lp::SolveStatus::kFeasible ||
                  r.status == lp::SolveStatus::kCancelled)
          << lp::to_string(r.status);
    }
  }
}

TEST(ServiceStress, MapBatchWithSharedDeadline) {
  // Batch-wide deadline: some prefix completes, the rest time out, and
  // the per-item statuses say which is which.
  const arch::Board board = stress_board();
  support::Rng rng(4);
  std::vector<design::Design> designs;
  for (int i = 0; i < 16; ++i) {
    workload::DesignGenOptions gen;
    gen.num_segments = rng.uniform_int(4, 10);
    gen.seed = rng.next_u64();
    designs.push_back(workload::generate_design(board, gen));
  }
  std::vector<mapping::BatchItem> items;
  for (const design::Design& d : designs) {
    items.push_back({.design = &d, .board = &board});
  }
  auto token = std::make_shared<support::CancelToken>();
  token->set_deadline_after_seconds(0.005);
  mapping::PipelineOptions options;
  options.global.mip.cancel_token = token;
  const mapping::BatchResult batch = mapping::map_batch(items, options, 2);
  ASSERT_EQ(batch.results.size(), items.size());
  for (const mapping::PipelineResult& r : batch.results) {
    EXPECT_TRUE(r.status == lp::SolveStatus::kOptimal ||
                r.status == lp::SolveStatus::kFeasible ||
                r.status == lp::SolveStatus::kTimeLimit)
        << lp::to_string(r.status);
  }
}

}  // namespace
}  // namespace gmm::service
