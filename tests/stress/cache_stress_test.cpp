// Solution-cache stress (CTest label "stress"; the sanitizer CI lane
// runs it): one real `mapper_serve --listen` under waves of concurrent
// clients drawing from a SHARED pool of designs — verbatim repeats (cache
// hits), traffic-only mutations (near-miss incremental re-solves),
// no_cache opt-outs, cancel storms, tight deadlines, and mid-request
// deserters.  The books must balance through the chaos:
//
//   * every well-behaved client gets exactly its own responses,
//   * hits + misses + bypasses == accepted once the server drains (every
//     accepted map request lands in exactly one cache-outcome bucket),
//   * a cached replay carries "cached":true with the cold objective,
//   * no_cache requests are never served from (or inserted into) the
//     cache,
//
// all ASan+UBSan-clean in CI.  Seeds are fixed so a failure reproduces.
#include <gtest/gtest.h>

#ifndef _WIN32
#include <unistd.h>
#endif

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/arch_io.hpp"
#include "design/design.hpp"
#include "design/design_io.hpp"
#include "service/json.hpp"
#include "service/process_client.hpp"
#include "service/protocol.hpp"
#include "support/rng.hpp"
#include "workload/workload_gen.hpp"

namespace gmm::service {
namespace {

#ifndef GMM_MAPPER_SERVE_PATH
#define GMM_MAPPER_SERVE_PATH ""
#endif

constexpr double kReadTimeout = 120.0;

arch::Board stress_board() {
  return *workload::board_from_totals({.banks = 23, .ports = 45,
                                       .configs = 100});
}

/// Shared pool of base designs: a small, fixed set so concurrent clients
/// collide on the same fingerprints (that is the point of the test).
constexpr int kPoolSize = 6;

design::Design pool_design(int slot) {
  workload::DesignGenOptions gen;
  gen.num_segments = 4 + slot;
  gen.seed = 7'000 + static_cast<std::uint64_t>(slot);
  return workload::generate_design(stress_board(), gen);
}

std::string pool_design_text(int slot) {
  return design::design_to_string(pool_design(slot));
}

/// The same design with one structure's read count bumped — identical
/// shape and conflicts, different traffic: the near-miss profile.  A
/// small fixed set of bumps per slot so mutants repeat across clients
/// too (a repeated mutant is an exact hit of the mutant's fingerprint).
std::string mutated_design_text(int slot, int bump) {
  design::Design design = pool_design(slot);
  design::Design out(design.name());
  for (std::size_t d = 0; d < design.size(); ++d) {
    design::DataStructure ds = design.at(d);
    if (d == 0) ds.reads = ds.effective_reads() + 100 * (1 + bump);
    out.add(ds);
  }
  for (const auto& [a, b] : design.conflict_pairs()) out.add_conflict(a, b);
  return design::design_to_string(out);
}

bool run_session(const std::string& endpoint, std::uint64_t seed,
                 bool deserter, std::atomic<int>& failures,
                 std::atomic<int>& no_cache_sent) {
  support::Rng rng(seed);
  ProcessClient client;
  if (!client.connect(endpoint)) {
    ++failures;
    ADD_FAILURE() << "seed " << seed << ": cannot connect";
    return false;
  }
  const int requests = static_cast<int>(rng.uniform_int(2, 5));
  std::vector<std::string> expected;
  int sent_no_cache = 0;
  for (int i = 0; i < requests; ++i) {
    const int slot = static_cast<int>(rng.uniform_int(0, kPoolSize - 1));
    const int profile = static_cast<int>(rng.uniform_int(0, 5));
    // no_cache ids carry a "-nc" suffix so the response loop can assert
    // an opt-out request is never served from the cache.
    const std::string id = "c" + std::to_string(seed) + "-" +
                           std::to_string(i) + (profile == 3 ? "-nc" : "");
    JsonObject request;
    request["v"] = 2;
    request["id"] = id;
    request["method"] = std::string("map");
    switch (profile) {
      case 0:
      case 1:  // verbatim repeat from the shared pool (hits after first)
        request["design_text"] = pool_design_text(slot);
        break;
      case 2:  // traffic-only mutant (near miss, or hit of the mutant)
        request["design_text"] = mutated_design_text(
            slot, static_cast<int>(rng.uniform_int(0, 1)));
        break;
      case 3: {  // opt-out: must bypass, never replay
        request["design_text"] = pool_design_text(slot);
        JsonObject options;
        options["no_cache"] = true;
        request["options"] = Json(std::move(options));
        ++sent_no_cache;
        break;
      }
      case 4:  // tight deadline: timeout/cancelled/ok all legal
        request["design_text"] = pool_design_text(slot);
        request["deadline_ms"] = rng.uniform_int(0, 20);
        break;
      case 5:  // cancel storm: map then cancel it immediately
        request["design_text"] = pool_design_text(slot);
        break;
    }
    if (!client.send_line(Json(std::move(request)).dump())) {
      ++failures;
      ADD_FAILURE() << "seed " << seed << ": send failed";
      return false;
    }
    expected.push_back(id);
    if (profile == 5) {
      JsonObject cancel;
      cancel["id"] = "x" + id;
      cancel["method"] = std::string("cancel");
      cancel["target"] = id;
      if (!client.send_line(Json(std::move(cancel)).dump())) {
        ++failures;
        ADD_FAILURE() << "seed " << seed << ": cancel send failed";
        return false;
      }
      expected.push_back("x" + id);  // the cancel ack
    }
  }
  if (deserter) {
    if (rng.bernoulli(0.5)) client.close_stdin();
    std::this_thread::sleep_for(
        std::chrono::microseconds(rng.uniform_int(0, 3000)));
    return true;  // destructor slams the socket mid-flight
  }
  no_cache_sent += sent_no_cache;  // only well-behaved clients count
  if (rng.bernoulli(0.5)) client.close_stdin();
  std::size_t got = 0;
  while (got < expected.size()) {
    const auto line = client.read_line(kReadTimeout);
    if (!line.has_value()) {
      ++failures;
      ADD_FAILURE() << "seed " << seed << ": missing "
                    << (expected.size() - got) << " response(s)";
      return false;
    }
    const JsonParseResult parsed = parse_json(*line);
    Response response;
    if (!parsed.ok || !Response::from_json(parsed.value, response)) {
      ++failures;
      ADD_FAILURE() << "seed " << seed << ": bad response " << *line;
      return false;
    }
    bool known = false;
    for (std::size_t i = got; i < expected.size(); ++i) {
      if (expected[i] == response.id) {
        std::swap(expected[got], expected[i]);
        known = true;
        break;
      }
    }
    if (!known) {
      ++failures;
      ADD_FAILURE() << "seed " << seed << ": foreign/duplicate response "
                    << response.id;
      return false;
    }
    // A no_cache request must never be served from the cache, and cancel
    // acks never carry a mapping at all.
    if (response.cached && (response.method == "cancel" ||
                            response.id.ends_with("-nc"))) {
      ++failures;
      ADD_FAILURE() << "seed " << seed << ": " << response.id
                    << " served from cache despite opting out";
      return false;
    }
    ++got;
  }
  return true;
}

TEST(CacheStress, RepeatMutateCancelStormsKeepExactAccounting) {
  if (std::string(GMM_MAPPER_SERVE_PATH).empty()) {
    GTEST_SKIP() << "mapper_serve path not configured";
  }
  const std::string board_file = "cache_stress_test_board.txt";
  {
    std::ofstream out(board_file);
    ASSERT_TRUE(out.good());
    arch::write_board(out, stress_board());
  }
  long pid = 0;
#ifndef _WIN32
  pid = static_cast<long>(::getpid());
#endif
  const std::string socket_path =
      "/tmp/gmm_cache_stress_" + std::to_string(pid) + ".sock";
  ProcessClient server;
  if (!server.start(GMM_MAPPER_SERVE_PATH,
                    {board_file, "--workers", "4", "--queue", "64",
                     "--cache", "64", "--listen", socket_path})) {
    GTEST_SKIP() << "cannot spawn subprocesses on this platform";
  }
  const auto listening = server.read_line(kReadTimeout);
  ASSERT_TRUE(listening.has_value()) << "no listening event";

  constexpr int kWaves = 3;
  constexpr int kClientsPerWave = 10;
  std::atomic<int> failures{0};
  std::atomic<int> no_cache_sent{0};
  support::Rng seeder(1'308'2026);
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> threads;
    threads.reserve(kClientsPerWave);
    for (int c = 0; c < kClientsPerWave; ++c) {
      const std::uint64_t seed = seeder.next_u64() % 1'000'000;
      const bool deserter = c % 4 == 0;  // a quarter deserts mid-request
      threads.emplace_back([&, seed, deserter] {
        run_session(socket_path, seed, deserter, failures, no_cache_sent);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  EXPECT_EQ(failures.load(), 0);

  // Deterministic replay coverage through a final well-behaved client:
  // a fresh design solves cold, its repeat replays cached with the same
  // objective, and its traffic mutant takes the near-miss path.
  ProcessClient audit;
  ASSERT_TRUE(audit.connect(socket_path));
  const auto map_once = [&](const std::string& id,
                            const std::string& design_text) {
    JsonObject request;
    request["v"] = 2;
    request["id"] = id;
    request["method"] = std::string("map");
    request["design_text"] = design_text;
    EXPECT_TRUE(audit.send_line(Json(std::move(request)).dump()));
    const auto line = audit.read_line(kReadTimeout);
    Response response;
    EXPECT_TRUE(line.has_value()) << "no response for " << id;
    if (line.has_value()) {
      const JsonParseResult parsed = parse_json(*line);
      EXPECT_TRUE(parsed.ok && Response::from_json(parsed.value, response))
          << *line;
    }
    return response;
  };
  const std::string fresh =
      "design auditd\n"
      "segment a depth 64 width 8 reads 123\n"
      "segment b depth 128 width 4 writes 77\n"
      "conflicts all\n";
  const Response cold = map_once("audit-cold", fresh);
  ASSERT_EQ(cold.status, ResponseStatus::kOk) << cold.error;
  EXPECT_FALSE(cold.cached);
  const Response warm = map_once("audit-warm", fresh);
  ASSERT_EQ(warm.status, ResponseStatus::kOk) << warm.error;
  EXPECT_TRUE(warm.cached);
  EXPECT_DOUBLE_EQ(warm.objective, cold.objective);
  const Response mutant = map_once("audit-mutant",
                                   "design auditd\n"
                                   "segment a depth 64 width 8 reads 999\n"
                                   "segment b depth 128 width 4 writes 77\n"
                                   "conflicts all\n");
  ASSERT_EQ(mutant.status, ResponseStatus::kOk) << mutant.error;
  EXPECT_FALSE(mutant.cached);

  // The books: poll until every admitted request has terminated, then
  // every accepted map request must sit in exactly one outcome bucket.
  Response stats;
  for (int attempt = 0;; ++attempt) {
    const std::string id = "audit-stats" + std::to_string(attempt);
    ASSERT_TRUE(audit.send_line(
        R"({"id":")" + id + R"(","method":"stats"})"));
    const auto line = audit.read_line(kReadTimeout);
    ASSERT_TRUE(line.has_value()) << "server wedged after stress";
    const JsonParseResult parsed = parse_json(*line);
    ASSERT_TRUE(parsed.ok) << *line;
    ASSERT_TRUE(Response::from_json(parsed.value, stats)) << *line;
    ASSERT_TRUE(stats.has_stats);
    if (stats.stats.accepted == stats.stats.completed || attempt >= 200) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const ServiceStats::Cache& cache = stats.stats.cache;
  EXPECT_EQ(stats.stats.accepted, stats.stats.completed)
      << "orphaned requests never terminated";
  EXPECT_EQ(cache.hits + cache.misses + cache.bypasses, stats.stats.accepted)
      << "cache accounting leaked a request";
  EXPECT_GE(cache.hits, 1);               // the audit replay at minimum
  EXPECT_GE(cache.near_misses, 1);        // the audit mutant at minimum
  EXPECT_LE(cache.near_misses, cache.misses);
  EXPECT_LE(cache.verify_fails, cache.misses);
  EXPECT_GE(cache.bypasses, no_cache_sent.load())
      << "a no_cache request was served from the cache";
  EXPECT_GE(cache.insertions, 1);
  EXPECT_GE(cache.entries, 1);

  ASSERT_TRUE(audit.send_line(R"({"method":"shutdown"})"));
  const auto ack = audit.read_line(kReadTimeout);
  EXPECT_TRUE(ack.has_value()) << "no shutdown ack";
  EXPECT_EQ(server.wait_exit(60.0), 0);
  std::remove(board_file.c_str());
}

}  // namespace
}  // namespace gmm::service
