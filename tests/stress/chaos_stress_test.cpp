// Chaos lane (CTest label "stress"; the sanitizer CI lane runs it):
// spawn one real `mapper_serve --listen` with the fault injector armed
// across EVERY instrumented site — LU refactorization sabotage, basis
// corruption, injected solve stalls, allocation failures, json parse
// failures, admission rejects, cache corruption, and the full socket
// fault family (accept failures, short/EINTR/ECONNRESET reads and
// writes) — then hammer it with client storms.  Under that weather the
// server must still honor the hard contracts:
//
//   * every map id answered on a surviving connection is answered
//     EXACTLY once, and never cross-wired to a foreign client;
//   * the books converge to accepted == completed once idle — every
//     admitted request reached exactly one terminal status, whatever
//     faults its solve or its connection absorbed;
//   * the process survives (no crash, no wedge) and exits 0 on
//     shutdown, ASan+UBSan-clean in CI.
//
// Connections the server deliberately kills (ECONNRESET injections,
// accept faults, write failures) may cost their clients responses —
// that is degradation, not breakage, and the harness tolerates it.
// Three fixed fault-schedule seeds so a failure reproduces bit-exactly.
#include <gtest/gtest.h>

#ifndef _WIN32
#include <unistd.h>
#endif

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "arch/arch_io.hpp"
#include "design/design_io.hpp"
#include "service/json.hpp"
#include "service/process_client.hpp"
#include "service/protocol.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"
#include "workload/workload_gen.hpp"

namespace gmm::service {
namespace {

#ifndef GMM_MAPPER_SERVE_PATH
#define GMM_MAPPER_SERVE_PATH ""
#endif

constexpr double kReadTimeout = 60.0;

arch::Board chaos_board() {
  return *workload::board_from_totals(
      {.banks = 23, .ports = 45, .configs = 100});
}

std::string random_design_text(support::Rng& rng) {
  workload::DesignGenOptions gen;
  gen.num_segments = rng.uniform_int(3, 8);
  gen.seed = rng.next_u64();
  return design::design_to_string(
      workload::generate_design(chaos_board(), gen));
}

/// The full armed surface: every known site, mostly low-probability
/// schedules so sessions mix clean and faulted behavior.  ilp.node:stall
/// stays rare — each fire parks a worker for a watchdog window.
std::string chaos_fault_spec(std::uint64_t seed) {
  return "seed=" + std::to_string(seed) +
         ",lu.refactor:singular@0.02"
         ",lp.basis_load:corrupt@0.02"
         ",ilp.node:stall@0.005"
         ",ilp.alloc:fail@0.02"
         ",service.json:fail@0.02"
         ",service.admission:reject@0.03"
         ",cache.verify:corrupt@0.05"
         ",socket.accept:fail@0.05"
         ",socket.read:short@0.02"
         ",socket.read:eintr@0.02"
         ",socket.read:econnreset@0.01"
         ",socket.write:partial@0.05"
         ",socket.write:eintr@0.02"
         ",socket.write:econnreset@0.005";
}

/// One storm session.  Returns via `violations` only for real contract
/// breaks (duplicate or cross-wired responses); everything a fault can
/// legitimately cost a client — a refused connect, a dropped connection,
/// missing responses — is tolerated silently.
void run_chaos_session(const std::string& endpoint, std::uint64_t seed,
                       bool deserter, std::atomic<int>& violations) {
  support::Rng rng(seed);
  ProcessClient client;
  if (!client.connect(endpoint, 10.0)) return;  // accept fault weather
  const int requests = static_cast<int>(rng.uniform_int(1, 8));
  std::set<std::string> mine;
  for (int i = 0; i < requests; ++i) {
    const std::string id =
        "c" + std::to_string(seed) + "-" + std::to_string(i);
    JsonObject request;
    request["id"] = id;
    request["method"] = std::string("map");
    request["design_text"] = random_design_text(rng);
    if (rng.bernoulli(0.25)) {
      request["deadline_ms"] = rng.uniform_int(5, 200);
    }
    if (!client.send_line(Json(std::move(request)).dump())) return;
    mine.insert(id);
  }
  if (deserter) {
    if (rng.bernoulli(0.5)) client.close_stdin();
    std::this_thread::sleep_for(
        std::chrono::microseconds(rng.uniform_int(0, 3000)));
    return;  // destructor slams the socket mid-flight
  }
  if (rng.bernoulli(0.5)) client.close_stdin();
  std::set<std::string> answered;
  std::size_t eaten = 0;  // requests the json fault swallowed before the
                          // id was parsed: the error response has no id
  while (answered.size() + eaten < mine.size()) {
    const auto line = client.read_line(kReadTimeout);
    if (!line.has_value()) return;  // dropped/killed connection: tolerated
    const JsonParseResult parsed = parse_json(*line);
    Response response;
    if (!parsed.ok || !Response::from_json(parsed.value, response)) {
      ++violations;
      ADD_FAILURE() << "seed " << seed << ": unparseable response " << *line;
      return;
    }
    if (response.id.empty()) {
      // Every line on this connection is one of our maps, so an id-less
      // error response accounts for exactly one outstanding request.
      ++eaten;
      continue;
    }
    if (response.method != "map") continue;
    if (answered.count(response.id) != 0) {
      ++violations;
      ADD_FAILURE() << "seed " << seed << ": duplicate terminal response "
                    << response.id;
      return;
    }
    if (mine.count(response.id) == 0) {
      ++violations;
      ADD_FAILURE() << "seed " << seed << ": cross-wired response "
                    << response.id;
      return;
    }
    // Rejections must carry the taxonomy the README promises: a shed /
    // quota / admission-fault rejection is retryable with a backoff hint.
    if (response.status == ResponseStatus::kRejected && response.retryable &&
        response.retry_after_ms <= 0) {
      ++violations;
      ADD_FAILURE() << "seed " << seed
                    << ": retryable rejection without retry_after_ms";
      return;
    }
    answered.insert(response.id);
  }
}

/// Fetch stats until accepted == completed (the idle books), resilient
/// to audit connections the fault schedule itself eats.
bool converge_stats(const std::string& endpoint, ServiceStats& out) {
  int fetched = 0;
  for (int attempt = 0; attempt < 120; ++attempt) {
    ProcessClient audit;
    if (!audit.connect(endpoint, 5.0)) continue;
    for (int i = 0; i < 100; ++i) {
      const std::string id =
          "audit-" + std::to_string(attempt) + "-" + std::to_string(i);
      if (!audit.send_line(R"({"id":")" + id + R"(","method":"stats"})")) {
        break;  // connection died: reconnect
      }
      const auto line = audit.read_line(kReadTimeout);
      if (!line.has_value()) break;
      const JsonParseResult parsed = parse_json(*line);
      Response response;
      if (!parsed.ok || !Response::from_json(parsed.value, response) ||
          !response.has_stats) {
        continue;  // the json fault ate this audit request: resend
      }
      out = response.stats;
      ++fetched;
      if (out.accepted == out.completed && fetched > 1) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  return false;
}

/// Ask the server to shut down, retrying across fault-killed connections
/// and json-fault-eaten requests until the ack lands or the process dies.
void request_shutdown(const std::string& endpoint) {
  for (int attempt = 0; attempt < 40; ++attempt) {
    ProcessClient c;
    if (!c.connect(endpoint, 2.0)) return;  // server already gone
    if (!c.send_line(R"({"method":"shutdown"})")) continue;
    const auto ack = c.read_line(10.0);
    if (ack.has_value() && ack->find("\"shutdown\"") != std::string::npos) {
      return;
    }
  }
}

void run_chaos_round(std::uint64_t fault_seed) {
  SCOPED_TRACE("fault seed " + std::to_string(fault_seed));
  const std::string board_file =
      "chaos_board_" + std::to_string(fault_seed) + ".txt";
  {
    std::ofstream out(board_file);
    ASSERT_TRUE(out.good());
    arch::write_board(out, chaos_board());
  }
  long pid = 0;
#ifndef _WIN32
  pid = static_cast<long>(::getpid());
#endif
  const std::string socket_path = "/tmp/gmm_chaos_" + std::to_string(pid) +
                                  "_" + std::to_string(fault_seed) + ".sock";
  ProcessClient server;
  if (!server.start(GMM_MAPPER_SERVE_PATH,
                    {board_file, "--workers", "4", "--queue", "32",
                     "--listen", socket_path, "--watchdog-ms", "400",
                     "--shed-delay-ms", "2000", "--max-inflight", "6",
                     "--faults", chaos_fault_spec(fault_seed)})) {
    GTEST_SKIP() << "cannot spawn subprocesses on this platform";
  }
  ASSERT_TRUE(server.read_line(kReadTimeout).has_value())
      << "no listening event";

  constexpr int kWaves = 2;
  constexpr int kClientsPerWave = 10;
  std::atomic<int> violations{0};
  support::Rng seeder(fault_seed * 1000003 + 17);
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> threads;
    threads.reserve(kClientsPerWave);
    for (int c = 0; c < kClientsPerWave; ++c) {
      const std::uint64_t seed = seeder.next_u64() % 1'000'000;
      const bool deserter = c % 4 == 0;
      threads.emplace_back([&, seed, deserter] {
        run_chaos_session(socket_path, seed, deserter, violations);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  EXPECT_EQ(violations.load(), 0);

  // Exact accounting through the chaos: every admitted request reached
  // exactly one terminal status.
  ServiceStats stats;
  ASSERT_TRUE(converge_stats(socket_path, stats))
      << "books never converged: server lost or double-counted requests";
  EXPECT_EQ(stats.accepted, stats.completed);
  EXPECT_GT(stats.transport.requests, 0);

  request_shutdown(socket_path);
  EXPECT_EQ(server.wait_exit(60.0), 0) << "server crashed or wedged";
  std::remove(board_file.c_str());
}

TEST(ChaosStress, FaultScheduleSeed1) {
  if (std::string(GMM_MAPPER_SERVE_PATH).empty()) {
    GTEST_SKIP() << "mapper_serve path not configured";
  }
  run_chaos_round(1);
}

TEST(ChaosStress, FaultScheduleSeed2) {
  if (std::string(GMM_MAPPER_SERVE_PATH).empty()) {
    GTEST_SKIP() << "mapper_serve path not configured";
  }
  run_chaos_round(2);
}

TEST(ChaosStress, FaultScheduleSeed3) {
  if (std::string(GMM_MAPPER_SERVE_PATH).empty()) {
    GTEST_SKIP() << "mapper_serve path not configured";
  }
  run_chaos_round(3);
}

}  // namespace
}  // namespace gmm::service
