// Stress tier (CTest label "stress"; the sanitizer CI lane runs it):
// multi-threaded branch & bound under basis-cache pressure.  Small caps
// force constant snapshot eviction while 4 workers race pushes, pops,
// and prune-while-queued discards; randomized cancellation and deadline
// injection (support::CancelToken) interrupts solves at arbitrary
// points of that churn.  Asserts, under ASan+UBSan in CI:
//
//   * every solve terminates with a definite status and a valid
//     stop_reason (no hangs, no leaked snapshots, no invalid statuses),
//   * the cache accounting stays consistent (loaded + evicted never
//     exceeds stored; a disabled cache stores nothing),
//   * the objective is identical across cache caps {off, 1, 3, 4096}
//     when the solve runs to completion — cap pressure may only ever
//     cost speed, never answers.
//
// Schedules are randomized but the SEEDS are fixed, so a failure
// reproduces.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "ilp/mip_solver.hpp"
#include "lp/model.hpp"
#include "support/cancellation.hpp"
#include "support/rng.hpp"

namespace gmm::ilp {
namespace {

using lp::SolveStatus;

/// Multi-dimensional knapsack with a weak LP bound (no cuts): a deep
/// branch & bound tree with real heap traffic — the shape that exercises
/// snapshot storage, loading, and eviction hardest.
lp::Model deep_tree_mip(int vars, int rows, std::uint64_t seed) {
  support::Rng rng(seed);
  lp::Model model;
  std::vector<lp::Index> x;
  for (int j = 0; j < vars; ++j) {
    x.push_back(
        model.add_binary(static_cast<double>(-rng.uniform_int(10, 100))));
  }
  for (int i = 0; i < rows; ++i) {
    lp::LinExpr weight;
    std::int64_t total = 0;
    for (const lp::Index j : x) {
      const std::int64_t w = rng.uniform_int(5, 40);
      weight.add(j, static_cast<double>(w));
      total += w;
    }
    model.add_constraint(weight, lp::Sense::kLessEqual,
                         static_cast<double>(total * 30 / 100));
  }
  return model;
}

MipOptions stress_options(int threads, std::size_t cap) {
  MipOptions options;
  options.num_threads = threads;
  options.max_stored_bases = cap;
  options.rel_gap = 0.0;
  options.abs_gap = 0.5;  // exact for the integer objectives used here
  options.max_cut_rounds = 0;  // keep the tree deep on purpose
  return options;
}

void check_cache_invariants(const MipResult& result, std::size_t cap) {
  const lp::BasisCacheStats& basis = result.basis;
  EXPECT_GE(basis.stored, 0);
  EXPECT_GE(basis.loaded, 0);
  EXPECT_GE(basis.evicted, 0);
  EXPECT_GE(basis.cold_pops, 0);
  EXPECT_LE(basis.loaded + basis.evicted, basis.stored)
      << "more snapshots consumed than ever stored";
  if (cap == 0) {
    EXPECT_EQ(basis.stored, 0);
    EXPECT_EQ(basis.loaded, 0);
    EXPECT_EQ(basis.evicted, 0);
    EXPECT_EQ(basis.warm_pop_pivots, 0);
  }
}

TEST(BasisCacheStress, TinyCapsNeverChangeTheObjective) {
  // Uncancelled runs across cap settings, 4 racing workers: identical
  // objectives, consistent accounting, and real eviction churn at the
  // tiny caps.
  const lp::Model model = deep_tree_mip(64, 10, 20260729);
  const MipResult reference = solve_mip(model, stress_options(1, 4096));
  ASSERT_EQ(reference.status, SolveStatus::kOptimal);

  for (const std::size_t cap : {std::size_t{0}, std::size_t{1},
                                std::size_t{3}, std::size_t{4096}}) {
    const MipResult result = solve_mip(model, stress_options(4, cap));
    ASSERT_EQ(result.status, SolveStatus::kOptimal) << "cap " << cap;
    EXPECT_EQ(result.stop_reason, SolveStatus::kOptimal) << "cap " << cap;
    EXPECT_EQ(result.objective, reference.objective) << "cap " << cap;
    check_cache_invariants(result, cap);
    if (cap == 1 || cap == 3) {
      // A deep tree under a near-zero cap must actually evict (the
      // accounting, not the luck of scheduling, guarantees this: far
      // more nodes are pushed than the cap can hold).
      EXPECT_GT(result.basis.evicted, 0) << "cap " << cap;
    }
  }
}

TEST(BasisCacheStress, RandomizedCancellationUnderCapPressure) {
  // Cancels fired after a random delay race pushes, pops, and evictions.
  // Every solve must terminate with a definite status, a valid
  // stop_reason, and consistent cache accounting — whatever instant the
  // token fired at.
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull, 6ull}) {
    support::Rng rng(seed);
    const lp::Model model =
        deep_tree_mip(56 + static_cast<int>(rng.uniform_int(0, 16)), 8,
                      seed * 7919);
    const std::size_t cap = static_cast<std::size_t>(
        rng.uniform_int(0, 3));  // 0..3: off or severely squeezed
    MipOptions options = stress_options(4, cap);
    auto token = std::make_shared<support::CancelToken>();
    options.cancel_token = token;

    const auto delay =
        std::chrono::microseconds(rng.uniform_int(50, 30'000));
    std::thread canceller([token, delay] {
      std::this_thread::sleep_for(delay);
      token->cancel();
    });
    const MipResult result = solve_mip(model, options);
    canceller.join();

    EXPECT_TRUE(result.status == SolveStatus::kOptimal ||
                result.status == SolveStatus::kFeasible ||
                result.status == SolveStatus::kCancelled)
        << "seed " << seed << ": " << lp::to_string(result.status);
    EXPECT_TRUE(result.stop_reason == SolveStatus::kOptimal ||
                result.stop_reason == SolveStatus::kCancelled)
        << "seed " << seed << ": " << lp::to_string(result.stop_reason);
    check_cache_invariants(result, cap);
  }
}

TEST(BasisCacheStress, RandomizedDeadlinesUnderCapPressure) {
  // Deadline injection: some budgets expire before the root, some
  // mid-churn, some never fire.  stop_reason must say which.
  for (const std::uint64_t seed : {10ull, 11ull, 12ull, 13ull, 14ull}) {
    support::Rng rng(seed);
    const lp::Model model = deep_tree_mip(60, 8, seed * 104729);
    const std::size_t cap = static_cast<std::size_t>(rng.uniform_int(0, 4));
    MipOptions options = stress_options(4, cap);
    auto token = std::make_shared<support::CancelToken>();
    token->set_deadline_after_seconds(
        static_cast<double>(rng.uniform_int(0, 40)) / 1000.0);
    options.cancel_token = token;

    const MipResult result = solve_mip(model, options);
    EXPECT_TRUE(result.status == SolveStatus::kOptimal ||
                result.status == SolveStatus::kFeasible ||
                result.status == SolveStatus::kTimeLimit)
        << "seed " << seed << ": " << lp::to_string(result.status);
    EXPECT_TRUE(result.stop_reason == SolveStatus::kOptimal ||
                result.stop_reason == SolveStatus::kTimeLimit)
        << "seed " << seed << ": " << lp::to_string(result.stop_reason);
    check_cache_invariants(result, cap);
    if (result.stop_reason == SolveStatus::kTimeLimit &&
        result.has_incumbent()) {
      // A deadline-stopped incumbent still reports a sound bound.
      EXPECT_LE(result.best_bound, result.objective) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace gmm::ilp
