// Property-based round-trip testing of the board text format: generate
// random valid boards with support/rng, write -> parse -> compare
// field-by-field.  The generator covers the corners the example files
// never exercise — empty board names (which used to come back renamed
// "unnamed"), single- and many-config types, zero-pin on-chip types,
// boards with no types at all — across hundreds of seeds.
#include "arch/arch_io.hpp"

#include <gtest/gtest.h>

#include <string>

#include "arch/board.hpp"
#include "support/rng.hpp"

namespace gmm::arch {
namespace {

/// Random valid BankType: power-of-two dimensions and constant capacity
/// across configurations, as BankType::validate requires.
BankType random_bank_type(support::Rng& rng, int ordinal) {
  BankType t;
  t.name = "type" + std::to_string(ordinal) + "_" +
           std::to_string(rng.uniform_int(0, 999));
  t.instances = rng.uniform_int(1, 64);
  t.ports = rng.uniform_int(1, 4);
  t.read_latency = rng.uniform_int(0, 5);
  t.write_latency = rng.uniform_int(0, 5);
  t.pins_traversed = rng.bernoulli(0.5) ? 0 : rng.uniform_int(1, 16);

  // Base configuration, then optional halved-depth/doubled-width
  // variants: every derived config keeps depth * width constant and both
  // dimensions powers of two, and widths stay distinct.
  std::int64_t depth = std::int64_t{1} << rng.uniform_int(4, 16);
  std::int64_t width = std::int64_t{1} << rng.uniform_int(0, 6);
  const std::int64_t extra = rng.uniform_int(0, 4);
  t.configs.push_back({depth, width});
  for (std::int64_t k = 0; k < extra && depth > 1; ++k) {
    depth /= 2;
    width *= 2;
    t.configs.push_back({depth, width});
  }
  return t;
}

Board random_board(support::Rng& rng) {
  // Empty names must round-trip too (they used to come back "unnamed").
  Board board(rng.bernoulli(0.1)
                  ? ""
                  : "board_" + std::to_string(rng.uniform_int(0, 9999)));
  // A third of the boards are explicit multi-device boards: every bank
  // type then belongs to the most recently declared device, and devices
  // with zero bank types must survive the trip as well.
  const bool with_devices = rng.bernoulli(0.33);
  const std::int64_t devices = with_devices ? rng.uniform_int(1, 4) : 0;
  int ordinal = 0;
  for (std::int64_t k = 0; k < devices; ++k) {
    BoardDevice device;
    device.name = "dev" + std::to_string(k);
    device.inter_device_pins = rng.bernoulli(0.5) ? 0 : rng.uniform_int(1, 8);
    board.add_device(device);
    const std::int64_t types = rng.uniform_int(0, 3);
    for (std::int64_t i = 0; i < types; ++i) {
      board.add_bank_type(random_bank_type(rng, ordinal++));
    }
  }
  if (!with_devices) {
    const std::int64_t types = rng.uniform_int(0, 5);
    for (std::int64_t i = 0; i < types; ++i) {
      board.add_bank_type(random_bank_type(rng, ordinal++));
    }
  }
  return board;
}

void expect_boards_equal(const Board& a, const Board& b,
                         std::uint64_t seed) {
  EXPECT_EQ(a.name(), b.name()) << "seed " << seed;
  ASSERT_EQ(a.num_devices(), b.num_devices()) << "seed " << seed;
  EXPECT_EQ(a.has_explicit_devices(), b.has_explicit_devices())
      << "seed " << seed;
  for (std::size_t k = 0; k < a.num_devices(); ++k) {
    EXPECT_EQ(a.device(k), b.device(k)) << "seed " << seed << " device " << k;
  }
  ASSERT_EQ(a.num_types(), b.num_types()) << "seed " << seed;
  for (std::size_t t = 0; t < a.num_types(); ++t) {
    const BankType& x = a.type(t);
    const BankType& y = b.type(t);
    EXPECT_EQ(a.device_of_type(t), b.device_of_type(t)) << "seed " << seed;
    EXPECT_EQ(x.name, y.name) << "seed " << seed;
    EXPECT_EQ(x.instances, y.instances) << "seed " << seed;
    EXPECT_EQ(x.ports, y.ports) << "seed " << seed;
    EXPECT_EQ(x.read_latency, y.read_latency) << "seed " << seed;
    EXPECT_EQ(x.write_latency, y.write_latency) << "seed " << seed;
    EXPECT_EQ(x.pins_traversed, y.pins_traversed) << "seed " << seed;
    ASSERT_EQ(x.configs.size(), y.configs.size()) << "seed " << seed;
    for (std::size_t c = 0; c < x.configs.size(); ++c) {
      EXPECT_EQ(x.configs[c], y.configs[c])
          << "seed " << seed << " config " << c;
    }
  }
}

TEST(ArchIoProperty, WriteParseRoundTripsRandomBoards) {
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    support::Rng rng(seed);
    const Board board = random_board(rng);
    const std::string text = board_to_string(board);
    const BoardParseResult parsed = parse_board_string(text);
    ASSERT_TRUE(parsed.ok)
        << "seed " << seed << ": " << parsed.error << "\n" << text;
    expect_boards_equal(board, parsed.board, seed);
    // Idempotence: a second trip produces byte-identical text.
    EXPECT_EQ(board_to_string(parsed.board), text) << "seed " << seed;
  }
}

TEST(ArchIoProperty, EmptyNameRoundTripsEmpty) {
  const Board board("");
  const BoardParseResult parsed = parse_board_string(board_to_string(board));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_TRUE(parsed.board.name().empty());
  EXPECT_EQ(parsed.board.num_types(), 0u);
}

}  // namespace
}  // namespace gmm::arch
