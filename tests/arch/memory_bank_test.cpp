#include "arch/memory_bank.hpp"

#include <gtest/gtest.h>

#include "arch/board.hpp"

namespace gmm::arch {
namespace {

BankType valid_type() {
  BankType t;
  t.name = "blockram";
  t.instances = 8;
  t.ports = 2;
  t.configs = {{4096, 1}, {2048, 2}, {1024, 4}, {512, 8}, {256, 16}};
  t.read_latency = 1;
  t.write_latency = 1;
  t.pins_traversed = 0;
  return t;
}

TEST(BankType, ValidTypePasses) {
  EXPECT_EQ(valid_type().validate(), "");
}

TEST(BankType, CapacityConstantAcrossConfigs) {
  const BankType t = valid_type();
  EXPECT_EQ(t.capacity_bits(), 4096);
  for (const BankConfig& c : t.configs) {
    EXPECT_EQ(c.capacity_bits(), 4096);
  }
}

TEST(BankType, Totals) {
  const BankType t = valid_type();
  EXPECT_EQ(t.total_ports(), 16);
  EXPECT_EQ(t.total_bits(), 8 * 4096);
  EXPECT_EQ(t.num_configs(), 5);
  EXPECT_TRUE(t.multi_config());
  EXPECT_TRUE(t.on_chip());
  EXPECT_EQ(t.max_width(), 16);
  EXPECT_EQ(t.max_depth(), 4096);
}

TEST(BankType, RejectsNonPow2Depth) {
  BankType t = valid_type();
  t.configs = {{3000, 1}};
  EXPECT_NE(t.validate(), "");
}

TEST(BankType, RejectsNonPow2Width) {
  BankType t = valid_type();
  t.configs = {{4096, 1}, {256, 17}};
  EXPECT_NE(t.validate(), "");
}

TEST(BankType, RejectsUnevenCapacity) {
  BankType t = valid_type();
  t.configs = {{4096, 1}, {2048, 4}};  // 4096 vs 8192 bits
  EXPECT_NE(t.validate(), "");
}

TEST(BankType, RejectsDuplicateWidth) {
  BankType t = valid_type();
  t.configs = {{4096, 1}, {4096, 1}};
  EXPECT_NE(t.validate(), "");
}

TEST(BankType, RejectsNonPositiveCounts) {
  BankType t = valid_type();
  t.instances = 0;
  EXPECT_NE(t.validate(), "");
  t = valid_type();
  t.ports = 0;
  EXPECT_NE(t.validate(), "");
}

TEST(BankConfig, ToString) {
  EXPECT_EQ((BankConfig{4096, 1}).to_string(), "4096x1");
  EXPECT_EQ((BankConfig{256, 16}).to_string(), "256x16");
}

TEST(Board, Totals) {
  Board board("test");
  board.add_bank_type(valid_type());
  BankType sram;
  sram.name = "sram";
  sram.instances = 4;
  sram.ports = 1;
  sram.configs = {{32768, 32}};
  sram.pins_traversed = 2;
  board.add_bank_type(sram);

  EXPECT_EQ(board.num_types(), 2u);
  EXPECT_EQ(board.total_banks(), 12);
  EXPECT_EQ(board.total_ports(), 16 + 4);
  // Only the multi-config BlockRAM contributes configurations.
  EXPECT_EQ(board.total_configs(), 16 * 5);
  EXPECT_EQ(board.total_bits(), 8 * 4096 + 4 * 32768 * 32);
}

}  // namespace
}  // namespace gmm::arch
