// Multi-device Board: device grouping, per-device totals, device views,
// and the round-robin instance splitter behind `mapper_cli --devices`.
#include <gtest/gtest.h>

#include "arch/board.hpp"

namespace gmm::arch {
namespace {

BankType bank(const std::string& name, std::int64_t instances,
              std::int64_t ports, std::int64_t pins, std::int64_t depth,
              std::int64_t width) {
  BankType t;
  t.name = name;
  t.instances = instances;
  t.ports = ports;
  t.pins_traversed = pins;
  t.configs.push_back({depth, width});
  return t;
}

TEST(BoardDevices, ImplicitSingleDevice) {
  Board board("b");
  board.add_bank_type(bank("ram", 4, 2, 0, 1024, 8));
  board.add_bank_type(bank("sram", 2, 1, 2, 32768, 32));

  EXPECT_FALSE(board.has_explicit_devices());
  EXPECT_FALSE(board.multi_device());
  EXPECT_EQ(board.num_devices(), 1u);
  EXPECT_EQ(board.device_of_type(0), 0u);
  EXPECT_EQ(board.device_of_type(1), 0u);
  EXPECT_EQ(board.device(0), BoardDevice{});
  EXPECT_EQ(board.device_type_indices(0),
            (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(board.device_banks(0), board.total_banks());
  EXPECT_EQ(board.device_bits(0), board.total_bits());
}

TEST(BoardDevices, ExplicitDevicesGroupTypes) {
  Board board("b");
  board.add_device({.name = "fpga0", .inter_device_pins = 3});
  board.add_bank_type(bank("ram0", 4, 2, 0, 1024, 8));
  board.add_device({.name = "fpga1", .inter_device_pins = 5});
  board.add_bank_type(bank("ram1", 8, 1, 0, 1024, 8));
  board.add_bank_type(bank("sram1", 2, 1, 2, 32768, 32));

  EXPECT_TRUE(board.has_explicit_devices());
  EXPECT_TRUE(board.multi_device());
  ASSERT_EQ(board.num_devices(), 2u);
  EXPECT_EQ(board.device(0).name, "fpga0");
  EXPECT_EQ(board.device(0).inter_device_pins, 3);
  EXPECT_EQ(board.device(1).name, "fpga1");
  EXPECT_EQ(board.device_of_type(0), 0u);
  EXPECT_EQ(board.device_of_type(1), 1u);
  EXPECT_EQ(board.device_of_type(2), 1u);
  EXPECT_EQ(board.device_type_indices(1),
            (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(board.device_banks(0), 4);
  EXPECT_EQ(board.device_banks(1), 10);
  EXPECT_EQ(board.device_bits(0), 4 * 1024 * 8);
  // The flat complexity totals see every device's banks.
  EXPECT_EQ(board.total_banks(), 14);
}

TEST(BoardDevices, ZeroBankDeviceIsRepresentable) {
  Board board("b");
  board.add_device({.name = "empty"});
  board.add_device({.name = "full"});
  board.add_bank_type(bank("ram", 4, 2, 0, 1024, 8));

  ASSERT_EQ(board.num_devices(), 2u);
  EXPECT_EQ(board.device_banks(0), 0);
  EXPECT_TRUE(board.device_type_indices(0).empty());
  EXPECT_EQ(board.device_banks(1), 4);
}

TEST(BoardDevices, DeviceViewIsAStandaloneSingleDeviceBoard) {
  Board board("b");
  board.add_device({.name = "fpga0"});
  board.add_bank_type(bank("ram0", 4, 2, 0, 1024, 8));
  board.add_device({.name = "fpga1"});
  board.add_bank_type(bank("ram1", 8, 1, 0, 2048, 4));

  const Board view = board.device_view(1);
  EXPECT_EQ(view.name(), "b:fpga1");
  EXPECT_FALSE(view.has_explicit_devices());
  ASSERT_EQ(view.num_types(), 1u);
  EXPECT_EQ(view.type(0).name, "ram1");
  EXPECT_EQ(view.total_banks(), 8);
}

TEST(BoardDevices, SplitAcrossDevicesPreservesTotals) {
  Board board("b");
  board.add_bank_type(bank("ram", 16, 2, 0, 4096, 1));
  board.add_bank_type(bank("sram", 4, 1, 2, 32768, 32));

  for (const int devices : {1, 2, 3, 4}) {
    const Board split = split_across_devices(board, devices, 3);
    EXPECT_EQ(split.num_devices(), static_cast<std::size_t>(devices));
    EXPECT_EQ(split.total_banks(), board.total_banks()) << devices;
    EXPECT_EQ(split.total_ports(), board.total_ports()) << devices;
    EXPECT_EQ(split.total_bits(), board.total_bits()) << devices;
    for (std::size_t k = 0; k < split.num_devices(); ++k) {
      EXPECT_EQ(split.device(k).name, "fpga" + std::to_string(k));
      EXPECT_EQ(split.device(k).inter_device_pins, 3);
      EXPECT_GT(split.device_banks(k), 0) << devices << " dev " << k;
    }
  }
}

TEST(BoardDevices, SplitOmitsTypesWithNoInstancesOnADevice) {
  Board board("b");
  board.add_bank_type(bank("ram", 5, 2, 0, 4096, 1));
  board.add_bank_type(bank("sram", 1, 1, 2, 32768, 32));

  // 1 sram over 3 devices: only device 0 gets it; the remainder of the
  // 5 rams goes 2/2/1.
  const Board split = split_across_devices(board, 3);
  EXPECT_EQ(split.total_banks(), 6);
  EXPECT_EQ(split.device_banks(0), 3);  // 2 ram + 1 sram
  EXPECT_EQ(split.device_banks(1), 2);
  EXPECT_EQ(split.device_banks(2), 1);
  EXPECT_EQ(split.device_type_indices(2).size(), 1u);  // ram only
}

}  // namespace
}  // namespace gmm::arch
