#include "arch/device_catalog.hpp"

#include <gtest/gtest.h>

namespace gmm::arch {
namespace {

// Table 1 of the paper: family-level RAM counts, sizes, configurations.

TEST(DeviceCatalog, VirtexRangeMatchesTable1) {
  const auto smallest = find_device("XCV50");
  const auto largest = find_device("XCV3200E");
  ASSERT_TRUE(smallest.has_value());
  ASSERT_TRUE(largest.has_value());
  EXPECT_EQ(smallest->ram_banks, 8);
  EXPECT_EQ(largest->ram_banks, 208);
  EXPECT_EQ(smallest->ram_bits, 4096);
  EXPECT_EQ(smallest->ram_name, "BlockRAM");
}

TEST(DeviceCatalog, FlexRangeMatchesTable1) {
  const auto smallest = find_device("EPF10K70");
  const auto largest = find_device("EPF10K250A");
  ASSERT_TRUE(smallest.has_value());
  ASSERT_TRUE(largest.has_value());
  EXPECT_EQ(smallest->ram_banks, 9);
  EXPECT_EQ(largest->ram_banks, 20);
  EXPECT_EQ(smallest->ram_bits, 2048);
  EXPECT_EQ(smallest->ram_name, "EAB");
}

TEST(DeviceCatalog, ApexRangeMatchesTable1) {
  const auto smallest = find_device("EP20K30E");
  const auto largest = find_device("EP20K1500E");
  ASSERT_TRUE(smallest.has_value());
  ASSERT_TRUE(largest.has_value());
  EXPECT_EQ(smallest->ram_banks, 12);
  EXPECT_EQ(largest->ram_banks, 216);
  EXPECT_EQ(smallest->ram_bits, 2048);
  EXPECT_EQ(smallest->ram_name, "ESB");
}

TEST(DeviceCatalog, VirtexConfigurationsMatchTable1) {
  const auto device = find_device("XCV1000");
  ASSERT_TRUE(device.has_value());
  const std::vector<BankConfig> expected{
      {4096, 1}, {2048, 2}, {1024, 4}, {512, 8}, {256, 16}};
  EXPECT_EQ(device->configs, expected);
}

TEST(DeviceCatalog, AlteraConfigurationsMatchTable1) {
  for (const char* name : {"EPF10K70", "EP20K400E"}) {
    const auto device = find_device(name);
    ASSERT_TRUE(device.has_value()) << name;
    const std::vector<BankConfig> expected{
        {2048, 1}, {1024, 2}, {512, 4}, {256, 8}, {128, 16}};
    EXPECT_EQ(device->configs, expected) << name;
  }
}

TEST(DeviceCatalog, EveryDeviceYieldsValidBankType) {
  for (const DeviceInfo& device : device_catalog()) {
    const BankType type = on_chip_bank_type(device);
    EXPECT_EQ(type.validate(), "") << device.device;
    EXPECT_TRUE(type.on_chip()) << device.device;
    EXPECT_EQ(type.capacity_bits(), device.ram_bits) << device.device;
  }
}

TEST(DeviceCatalog, UnknownDeviceReturnsNullopt) {
  EXPECT_FALSE(find_device("XCV9999").has_value());
}

TEST(DeviceCatalog, OffChipPresetsAreValid) {
  const BankType sram = offchip_sram(4, 32768, 32);
  EXPECT_EQ(sram.validate(), "");
  EXPECT_FALSE(sram.on_chip());
  EXPECT_GT(sram.pins_traversed, 0);
  const BankType bulk = offchip_bulk(2, 1 << 20, 32);
  EXPECT_EQ(bulk.validate(), "");
  EXPECT_GT(bulk.read_latency, sram.read_latency);
  EXPECT_GT(bulk.pins_traversed, sram.pins_traversed);
}

TEST(DeviceCatalog, BoardPresets) {
  const Board board = single_fpga_board("XCV1000");
  EXPECT_EQ(board.num_types(), 2u);
  EXPECT_EQ(board.type(0).instances, 32);
  const Board hier = hierarchical_board("XCV300");
  EXPECT_EQ(hier.num_types(), 3u);
  // Tiers get strictly farther from the processing unit.
  EXPECT_LT(hier.type(0).pins_traversed, hier.type(1).pins_traversed);
  EXPECT_LT(hier.type(1).pins_traversed, hier.type(2).pins_traversed);
}

}  // namespace
}  // namespace gmm::arch
