#include "arch/arch_io.hpp"

#include <gtest/gtest.h>

#include "arch/device_catalog.hpp"

namespace gmm::arch {
namespace {

TEST(ArchIo, ParsesMinimalBoard) {
  const BoardParseResult r = parse_board_string(R"(
# a comment
board demo
banktype blockram instances 8 ports 2 rl 1 wl 1 pins 0
config 4096 1
config 256 16
end
)");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.board.name(), "demo");
  ASSERT_EQ(r.board.num_types(), 1u);
  EXPECT_EQ(r.board.type(0).name, "blockram");
  EXPECT_EQ(r.board.type(0).instances, 8);
  EXPECT_EQ(r.board.type(0).ports, 2);
  ASSERT_EQ(r.board.type(0).configs.size(), 2u);
  EXPECT_EQ(r.board.type(0).configs[1], (BankConfig{256, 16}));
}

TEST(ArchIo, RoundTripsPresetBoards) {
  for (const char* device : {"XCV50", "XCV1000", "EPF10K70", "EP20K400E"}) {
    const Board original = hierarchical_board(device);
    const BoardParseResult reparsed =
        parse_board_string(board_to_string(original));
    ASSERT_TRUE(reparsed.ok) << reparsed.error;
    EXPECT_EQ(reparsed.board.name(), original.name());
    ASSERT_EQ(reparsed.board.num_types(), original.num_types());
    for (std::size_t t = 0; t < original.num_types(); ++t) {
      EXPECT_EQ(reparsed.board.type(t).name, original.type(t).name);
      EXPECT_EQ(reparsed.board.type(t).instances, original.type(t).instances);
      EXPECT_EQ(reparsed.board.type(t).ports, original.type(t).ports);
      EXPECT_EQ(reparsed.board.type(t).configs, original.type(t).configs);
      EXPECT_EQ(reparsed.board.type(t).read_latency,
                original.type(t).read_latency);
      EXPECT_EQ(reparsed.board.type(t).write_latency,
                original.type(t).write_latency);
      EXPECT_EQ(reparsed.board.type(t).pins_traversed,
                original.type(t).pins_traversed);
    }
  }
}

TEST(ArchIo, RejectsUnknownDirective) {
  const BoardParseResult r = parse_board_string("frobnicate yes\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 1"), std::string::npos);
}

TEST(ArchIo, RejectsConfigOutsideBankType) {
  const BoardParseResult r = parse_board_string("config 16 8\n");
  EXPECT_FALSE(r.ok);
}

TEST(ArchIo, RejectsUnterminatedBankType) {
  const BoardParseResult r = parse_board_string(
      "banktype b instances 1 ports 1 rl 1 wl 1 pins 0\nconfig 16 8\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unterminated"), std::string::npos);
}

TEST(ArchIo, RejectsInvalidBankTypeOnEnd) {
  // Non-pow2 depth must be rejected at the 'end' marker.
  const BoardParseResult r = parse_board_string(
      "banktype b instances 1 ports 1 rl 1 wl 1 pins 0\nconfig 100 8\nend\n");
  EXPECT_FALSE(r.ok);
}

TEST(ArchIo, RejectsBadInteger) {
  const BoardParseResult r = parse_board_string(
      "banktype b instances eight ports 1 rl 1 wl 1 pins 0\n");
  EXPECT_FALSE(r.ok);
}

}  // namespace
}  // namespace gmm::arch
