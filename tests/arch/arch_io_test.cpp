#include "arch/arch_io.hpp"

#include <gtest/gtest.h>

#include "arch/device_catalog.hpp"

namespace gmm::arch {
namespace {

TEST(ArchIo, ParsesMinimalBoard) {
  const BoardParseResult r = parse_board_string(R"(
# a comment
board demo
banktype blockram instances 8 ports 2 rl 1 wl 1 pins 0
config 4096 1
config 256 16
end
)");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.board.name(), "demo");
  ASSERT_EQ(r.board.num_types(), 1u);
  EXPECT_EQ(r.board.type(0).name, "blockram");
  EXPECT_EQ(r.board.type(0).instances, 8);
  EXPECT_EQ(r.board.type(0).ports, 2);
  ASSERT_EQ(r.board.type(0).configs.size(), 2u);
  EXPECT_EQ(r.board.type(0).configs[1], (BankConfig{256, 16}));
}

TEST(ArchIo, RoundTripsPresetBoards) {
  for (const char* device : {"XCV50", "XCV1000", "EPF10K70", "EP20K400E"}) {
    const Board original = hierarchical_board(device);
    const BoardParseResult reparsed =
        parse_board_string(board_to_string(original));
    ASSERT_TRUE(reparsed.ok) << reparsed.error;
    EXPECT_EQ(reparsed.board.name(), original.name());
    ASSERT_EQ(reparsed.board.num_types(), original.num_types());
    for (std::size_t t = 0; t < original.num_types(); ++t) {
      EXPECT_EQ(reparsed.board.type(t).name, original.type(t).name);
      EXPECT_EQ(reparsed.board.type(t).instances, original.type(t).instances);
      EXPECT_EQ(reparsed.board.type(t).ports, original.type(t).ports);
      EXPECT_EQ(reparsed.board.type(t).configs, original.type(t).configs);
      EXPECT_EQ(reparsed.board.type(t).read_latency,
                original.type(t).read_latency);
      EXPECT_EQ(reparsed.board.type(t).write_latency,
                original.type(t).write_latency);
      EXPECT_EQ(reparsed.board.type(t).pins_traversed,
                original.type(t).pins_traversed);
    }
  }
}

TEST(ArchIo, RejectsUnknownDirective) {
  const BoardParseResult r = parse_board_string("frobnicate yes\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 1"), std::string::npos);
}

TEST(ArchIo, RejectsConfigOutsideBankType) {
  const BoardParseResult r = parse_board_string("config 16 8\n");
  EXPECT_FALSE(r.ok);
}

TEST(ArchIo, RejectsUnterminatedBankType) {
  const BoardParseResult r = parse_board_string(
      "banktype b instances 1 ports 1 rl 1 wl 1 pins 0\nconfig 16 8\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unterminated"), std::string::npos);
}

TEST(ArchIo, RejectsInvalidBankTypeOnEnd) {
  // Non-pow2 depth must be rejected at the 'end' marker.
  const BoardParseResult r = parse_board_string(
      "banktype b instances 1 ports 1 rl 1 wl 1 pins 0\nconfig 100 8\nend\n");
  EXPECT_FALSE(r.ok);
}

TEST(ArchIo, RejectsBadInteger) {
  const BoardParseResult r = parse_board_string(
      "banktype b instances eight ports 1 rl 1 wl 1 pins 0\n");
  EXPECT_FALSE(r.ok);
}

TEST(ArchIo, ParsesMultiDeviceBoard) {
  const BoardParseResult r = parse_board_string(
      "board dual\n"
      "device fpga0 pins 3\n"
      "banktype ram0 instances 4 ports 2 rl 1 wl 1 pins 0\n"
      "config 1024 8\n"
      "end\n"
      "device fpga1\n"
      "banktype ram1 instances 8 ports 1 rl 1 wl 1 pins 0\n"
      "config 2048 4\n"
      "end\n");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.board.num_devices(), 2u);
  EXPECT_TRUE(r.board.multi_device());
  EXPECT_EQ(r.board.device(0).name, "fpga0");
  EXPECT_EQ(r.board.device(0).inter_device_pins, 3);
  EXPECT_EQ(r.board.device(1).name, "fpga1");
  EXPECT_EQ(r.board.device(1).inter_device_pins, 0);
  EXPECT_EQ(r.board.device_of_type(0), 0u);
  EXPECT_EQ(r.board.device_of_type(1), 1u);
}

TEST(ArchIo, MultiDeviceBoardRoundTrips) {
  Board board("dual");
  board.add_device({.name = "fpga0", .inter_device_pins = 3});
  BankType ram;
  ram.name = "ram0";
  ram.instances = 4;
  ram.ports = 2;
  ram.configs.push_back({1024, 8});
  board.add_bank_type(ram);
  board.add_device({.name = "empty_fpga"});  // zero banks must survive too

  const BoardParseResult r = parse_board_string(board_to_string(board));
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.board.num_devices(), 2u);
  EXPECT_EQ(r.board.device(0).name, "fpga0");
  EXPECT_EQ(r.board.device(0).inter_device_pins, 3);
  EXPECT_EQ(r.board.device(1).name, "empty_fpga");
  EXPECT_TRUE(r.board.device_type_indices(1).empty());
  // Idempotence: a second trip is byte-identical.
  EXPECT_EQ(board_to_string(r.board), board_to_string(board));
}

TEST(ArchIo, SingleDeviceBoardsWriteNoDeviceLines) {
  const BoardParseResult r = parse_board_string(
      "board b\nbanktype t instances 1 ports 1 rl 1 wl 1 pins 0\n"
      "config 16 8\nend\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(board_to_string(r.board).find("device"), std::string::npos);
}

TEST(ArchIo, RejectsBadDeviceDirectives) {
  // Inside a banktype, after bank types, or with malformed pins.
  const char* bad[] = {
      "banktype t instances 1 ports 1 rl 1 wl 1 pins 0\ndevice d\n",
      "banktype t instances 1 ports 1 rl 1 wl 1 pins 0\nconfig 16 8\nend\n"
      "device late\n",
      "device d pins\n",
      "device d pins -2\n",
      "device d ports 3\n",
      "device\n",
  };
  for (const char* text : bad) {
    const BoardParseResult r = parse_board_string(text);
    EXPECT_FALSE(r.ok) << text;
    EXPECT_FALSE(r.error.empty()) << text;
  }
}

}  // namespace
}  // namespace gmm::arch
