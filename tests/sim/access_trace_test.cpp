#include "sim/access_trace.hpp"

#include <gtest/gtest.h>

#include <map>

namespace gmm::sim {
namespace {

design::Design small_design() {
  design::Design d("d");
  design::DataStructure a;
  a.name = "a";
  a.depth = 16;
  a.width = 8;
  a.reads = 100;
  a.writes = 50;
  d.add(a);
  design::DataStructure b;
  b.name = "b";
  b.depth = 64;
  b.width = 4;
  b.reads = 10;
  b.writes = 20;
  d.add(b);
  return d;
}

TEST(AccessTrace, RespectsFootprintCounts) {
  const design::Design d = small_design();
  const std::vector<Access> trace = generate_trace(d);
  std::map<std::pair<std::uint32_t, bool>, std::int64_t> counts;
  for (const Access& a : trace) ++counts[std::make_pair(a.ds, a.is_write)];
  EXPECT_EQ(counts[std::make_pair(0u, false)], 100);
  EXPECT_EQ(counts[std::make_pair(0u, true)], 50);
  EXPECT_EQ(counts[std::make_pair(1u, false)], 10);
  EXPECT_EQ(counts[std::make_pair(1u, true)], 20);
}

TEST(AccessTrace, AddressesInRange) {
  const design::Design d = small_design();
  for (const AddressPattern pattern :
       {AddressPattern::kSequential, AddressPattern::kStrided,
        AddressPattern::kRandom}) {
    TraceOptions options;
    options.pattern = pattern;
    for (const Access& a : generate_trace(d, options)) {
      EXPECT_GE(a.word, 0);
      EXPECT_LT(a.word, d.at(a.ds).depth);
    }
  }
}

TEST(AccessTrace, DeterministicForSeed) {
  const design::Design d = small_design();
  TraceOptions options;
  options.seed = 99;
  const std::vector<Access> t1 = generate_trace(d, options);
  const std::vector<Access> t2 = generate_trace(d, options);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].ds, t2[i].ds);
    EXPECT_EQ(t1[i].word, t2[i].word);
    EXPECT_EQ(t1[i].is_write, t2[i].is_write);
  }
}

TEST(AccessTrace, CapsTotalAccesses) {
  design::Design d("d");
  design::DataStructure big;
  big.name = "big";
  big.depth = 4096;
  big.width = 8;
  big.reads = 10'000'000;
  big.writes = 10'000'000;
  d.add(big);
  TraceOptions options;
  options.max_accesses = 1000;
  const std::vector<Access> trace = generate_trace(d, options);
  EXPECT_LE(trace.size(), 1100u);  // scaling keeps ratios, small slack
  EXPECT_GE(trace.size(), 900u);
}

TEST(AccessTrace, SequentialPatternCoversPrefix) {
  design::Design d("d");
  design::DataStructure s;
  s.name = "s";
  s.depth = 8;
  s.width = 8;
  s.reads = 8;
  s.writes = 8;
  d.add(s);
  TraceOptions options;
  options.pattern = AddressPattern::kSequential;
  std::vector<bool> seen(8, false);
  for (const Access& a : generate_trace(d, options)) seen[a.word] = true;
  for (const bool hit : seen) EXPECT_TRUE(hit);
}

}  // namespace
}  // namespace gmm::sim
