#include "sim/memory_sim.hpp"

#include <gtest/gtest.h>

#include "arch/device_catalog.hpp"
#include "mapping/pipeline.hpp"

namespace gmm::sim {
namespace {

struct Mapped {
  arch::Board board;
  design::Design design;
  mapping::PipelineResult pipeline;
};

Mapped map_simple(bool offchip) {
  Mapped m{arch::Board("b"), design::Design("d"), {}};
  m.board.add_bank_type(
      arch::on_chip_bank_type(*arch::find_device("XCV300")));
  m.board.add_bank_type(arch::offchip_sram(4, 32768, 32));
  design::DataStructure s;
  s.name = "s";
  s.depth = 256;
  s.width = 16;
  s.reads = 512;
  s.writes = 256;
  m.design.add(s);
  m.design.set_all_conflicting();
  if (offchip) {
    // Force the structure off-chip by forbidding the on-chip type.
    mapping::PipelineOptions options;
    options.global.no_good_cuts.push_back({{0, 0}});
    m.pipeline = mapping::map_pipeline(m.design, m.board, options);
  } else {
    m.pipeline = mapping::map_pipeline(m.design, m.board);
  }
  return m;
}

TEST(MemorySim, AccountsEveryAccess) {
  const Mapped m = map_simple(false);
  ASSERT_TRUE(m.pipeline.detailed.success);
  const std::vector<Access> trace = generate_trace(m.design);
  const SimReport report =
      simulate(m.board, m.design, m.pipeline.detailed, trace);
  EXPECT_EQ(report.accesses, static_cast<std::int64_t>(trace.size()));
  EXPECT_GT(report.total_cycles, 0);
  EXPECT_GT(report.latency_sum, 0);
  std::int64_t per_type = 0;
  for (const TypeStats& t : report.per_type) per_type += t.accesses;
  EXPECT_EQ(per_type, report.accesses);
}

TEST(MemorySim, OnChipLatencyMatchesModel) {
  const Mapped m = map_simple(false);
  ASSERT_TRUE(m.pipeline.detailed.success);
  ASSERT_EQ(m.pipeline.assignment.type_of[0], 0);  // on-chip
  const std::vector<Access> trace = generate_trace(m.design);
  const SimReport report =
      simulate(m.board, m.design, m.pipeline.detailed, trace);
  // On-chip: RL = WL = 1, no pin penalty -> every access takes 1 cycle.
  EXPECT_DOUBLE_EQ(report.average_latency(), 1.0);
}

TEST(MemorySim, OffChipMappingIsSlower) {
  const Mapped onchip = map_simple(false);
  const Mapped offchip = map_simple(true);
  ASSERT_TRUE(onchip.pipeline.detailed.success);
  ASSERT_TRUE(offchip.pipeline.detailed.success);
  ASSERT_NE(offchip.pipeline.assignment.type_of[0], 0);
  const std::vector<Access> trace = generate_trace(onchip.design);
  const SimReport fast =
      simulate(onchip.board, onchip.design, onchip.pipeline.detailed, trace);
  const SimReport slow = simulate(offchip.board, offchip.design,
                                  offchip.pipeline.detailed, trace);
  EXPECT_GT(slow.latency_sum, fast.latency_sum);
  EXPECT_GT(slow.total_cycles, fast.total_cycles);
  // Off-chip SRAM: latency 2 + pin penalty ceil(2/2) = 3 per access.
  EXPECT_DOUBLE_EQ(slow.average_latency(), 3.0);
}

TEST(MemorySim, PortContentionCreatesStalls) {
  // Single-ported SRAM, wide issue: concurrent accesses must serialize.
  arch::Board board("b");
  board.add_bank_type(arch::offchip_sram(1, 32768, 32));
  design::Design design("d");
  design::DataStructure s;
  s.name = "s";
  s.depth = 1024;
  s.width = 32;
  s.reads = 2048;
  s.writes = 512;
  design.add(s);
  design.set_all_conflicting();
  const mapping::PipelineResult pipeline = mapping::map_pipeline(design, board);
  ASSERT_TRUE(pipeline.detailed.success);
  const std::vector<Access> trace = generate_trace(design);
  SimOptions wide;
  wide.issue_width = 8;
  const SimReport report =
      simulate(board, design, pipeline.detailed, trace, wide);
  EXPECT_GT(report.stall_cycles, 0);
  // Makespan is bounded below by serialized service on the single port.
  EXPECT_GE(report.total_cycles, report.latency_sum);
}

TEST(MemorySim, DualPortedBankServesTwoStreams) {
  // Two structures on one dual-ported BlockRAM: both ports work in
  // parallel, so the makespan is about half the single-port case.
  arch::Board board("b");
  arch::BankType t = arch::on_chip_bank_type(*arch::find_device("XCV50"));
  board.add_bank_type(t);
  design::Design design("d");
  for (int i = 0; i < 2; ++i) {
    design::DataStructure s;
    s.name = "s" + std::to_string(i);
    s.depth = 2048;
    s.width = 1;
    s.reads = 4096;
    s.writes = 1024;
    design.add(s);
  }
  design.set_all_conflicting();
  const mapping::PipelineResult pipeline = mapping::map_pipeline(design, board);
  ASSERT_TRUE(pipeline.detailed.success);
  const std::vector<Access> trace = generate_trace(design);
  SimOptions wide;
  wide.issue_width = 4;
  const SimReport report =
      simulate(board, design, pipeline.detailed, trace, wide);
  // With 2 ports and issue width 4, total cycles are roughly half the
  // fully serialized bound (each access takes 1 cycle on-chip).
  EXPECT_LT(report.total_cycles, report.latency_sum);
}

TEST(MemorySim, MultiBankWordStripesAcrossColumns) {
  // A 17-bit-wide structure on the Figure-2 style bank uses multiple
  // column fragments per word; the simulation must still account one
  // access per trace entry.
  arch::Board board("b");
  arch::BankType t;
  t.name = "fig2";
  t.instances = 16;
  t.ports = 3;
  t.configs = {{128, 1}, {64, 2}, {32, 4}, {16, 8}};
  board.add_bank_type(t);
  design::Design design("d");
  design::DataStructure s;
  s.name = "wide";
  s.depth = 55;
  s.width = 17;
  s.reads = 110;
  s.writes = 55;
  design.add(s);
  design.set_all_conflicting();
  const mapping::PipelineResult pipeline = mapping::map_pipeline(design, board);
  ASSERT_TRUE(pipeline.detailed.success) << pipeline.detailed.failure;
  const std::vector<Access> trace = generate_trace(design);
  const SimReport report =
      simulate(board, design, pipeline.detailed, trace);
  EXPECT_EQ(report.accesses, static_cast<std::int64_t>(trace.size()));
  EXPECT_GT(report.total_cycles, 0);
}

}  // namespace
}  // namespace gmm::sim
