#include "sim/footprint.hpp"

#include <gtest/gtest.h>

#include "arch/device_catalog.hpp"
#include "mapping/cost_model.hpp"

namespace gmm::sim {
namespace {

design::Design two_structures() {
  design::Design d("d");
  design::DataStructure a;
  a.name = "hot";
  a.depth = 64;
  a.width = 8;
  d.add(a);
  design::DataStructure b;
  b.name = "cold";
  b.depth = 64;
  b.width = 8;
  d.add(b);
  d.set_all_conflicting();
  return d;
}

TEST(Footprint, CountsTraceAccesses) {
  const design::Design design = two_structures();
  std::vector<Access> trace;
  for (int i = 0; i < 1000; ++i) trace.push_back({0, i % 64, false});
  for (int i = 0; i < 10; ++i) trace.push_back({0, i, true});
  trace.push_back({1, 0, false});
  const design::Design profiled = with_trace_footprints(design, trace);
  EXPECT_EQ(profiled.at(0).reads, 1000);
  EXPECT_EQ(profiled.at(0).writes, 10);
  EXPECT_EQ(profiled.at(1).reads, 1);
  EXPECT_EQ(profiled.at(1).writes, 1);  // untouched -> minimum 1
  // Conflicts survive the profiling copy.
  EXPECT_TRUE(profiled.conflicts(0, 1));
}

TEST(Footprint, ProfiledCostsPreferHotStructuresOnChip) {
  const design::Design design = two_structures();
  std::vector<Access> trace;
  for (int i = 0; i < 100000; ++i) trace.push_back({0, i % 64, false});
  trace.push_back({1, 0, false});
  const design::Design profiled = with_trace_footprints(design, trace);

  const arch::Board board = arch::single_fpga_board("XCV50", 2);
  const mapping::CostTable table(profiled, board);
  // Off-chip penalty for the hot structure dwarfs the cold one's.
  const double hot_penalty = table.cost(0, 1) - table.cost(0, 0);
  const double cold_penalty = table.cost(1, 1) - table.cost(1, 0);
  EXPECT_GT(hot_penalty, 100 * cold_penalty);
}

TEST(Footprint, RoundTripWithGeneratedTrace) {
  // generate_trace followed by with_trace_footprints reproduces the
  // effective footprints (up to the trace cap).
  design::Design design = two_structures();
  const std::vector<Access> trace = generate_trace(design);
  const design::Design profiled = with_trace_footprints(design, trace);
  EXPECT_EQ(profiled.at(0).reads, design.at(0).effective_reads());
  EXPECT_EQ(profiled.at(0).writes, design.at(0).effective_writes());
}

}  // namespace
}  // namespace gmm::sim
