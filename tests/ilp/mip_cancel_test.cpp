// Cooperative cancellation / deadline plumbing of the branch & bound:
// MipOptions::cancel_token must stop the search with the right status and
// stop_reason, from any state (before the root, mid-search, serial and
// parallel), and a stopped solve must still report sound bounds.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "ilp/mip_solver.hpp"
#include "mapping/complete_mapper.hpp"
#include "mapping/cost_model.hpp"
#include "support/cancellation.hpp"
#include "support/rng.hpp"
#include "workload/workload_gen.hpp"

namespace gmm::ilp {
namespace {

using lp::Index;
using lp::LinExpr;
using lp::Model;
using lp::Sense;
using lp::SolveStatus;

/// Small but not-instant 0/1 knapsack-ish model.
Model small_model(std::uint64_t seed = 11) {
  support::Rng rng(seed);
  Model m;
  std::vector<Index> vars;
  for (int j = 0; j < 18; ++j) {
    vars.push_back(m.add_binary(static_cast<double>(rng.uniform_int(-30, -1))));
  }
  for (int i = 0; i < 4; ++i) {
    LinExpr knap;
    std::int64_t total = 0;
    for (const Index j : vars) {
      if (rng.bernoulli(0.6)) {
        const std::int64_t w = rng.uniform_int(1, 20);
        knap.add(j, static_cast<double>(w));
        total += w;
      }
    }
    m.add_constraint(knap, Sense::kLessEqual,
                     static_cast<double>(std::max<std::int64_t>(1, total / 2)));
  }
  return m;
}

TEST(MipCancel, PreCancelledTokenStopsBeforeAnyNode) {
  auto token = std::make_shared<support::CancelToken>();
  token->cancel();
  MipOptions options;
  options.cancel_token = token;
  const MipResult r = solve_mip(small_model(), options);
  EXPECT_EQ(r.status, SolveStatus::kCancelled);
  EXPECT_EQ(r.stop_reason, SolveStatus::kCancelled);
  EXPECT_FALSE(r.has_incumbent());
  EXPECT_EQ(r.nodes, 0);
}

TEST(MipCancel, ExpiredDeadlineReportsTimeLimit) {
  auto token = std::make_shared<support::CancelToken>();
  token->set_deadline_after_seconds(0.0);
  MipOptions options;
  options.cancel_token = token;
  const MipResult r = solve_mip(small_model(), options);
  EXPECT_EQ(r.status, SolveStatus::kTimeLimit);
  EXPECT_EQ(r.stop_reason, SolveStatus::kTimeLimit);
}

TEST(MipCancel, CancelOutranksExpiredDeadline) {
  auto token = std::make_shared<support::CancelToken>();
  token->set_deadline_after_seconds(0.0);
  token->cancel();
  MipOptions options;
  options.cancel_token = token;
  EXPECT_EQ(solve_mip(small_model(), options).status,
            SolveStatus::kCancelled);
}

TEST(MipCancel, UntouchedTokenDoesNotPerturbTheSolve) {
  const Model m = small_model();
  MipOptions plain;
  plain.rel_gap = 0.0;
  MipOptions with_token = plain;
  with_token.cancel_token = std::make_shared<support::CancelToken>();
  const MipResult a = solve_mip(m, plain);
  const MipResult b = solve_mip(m, with_token);
  ASSERT_EQ(a.status, SolveStatus::kOptimal);
  ASSERT_EQ(b.status, SolveStatus::kOptimal);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(b.stop_reason, SolveStatus::kOptimal);
}

class MipCancelMidSolve : public ::testing::TestWithParam<int> {};

TEST_P(MipCancelMidSolve, CancelWhileSolvingSurfacesCancelled) {
  // A complete-formulation ILP that runs for seconds: build it through
  // the complete mapper so the model matches the serving workload, and
  // cancel from another thread shortly after the solve starts.
  const auto board = workload::board_from_totals(
      {.banks = 180, .ports = 265, .configs = 375});
  ASSERT_TRUE(board.has_value());
  workload::DesignGenOptions gen;
  gen.num_segments = 64;
  gen.seed = 5;
  const design::Design design = workload::generate_design(*board, gen);
  const mapping::CostTable table(design, *board);

  auto token = std::make_shared<support::CancelToken>();
  mapping::CompleteOptions options;
  options.mip.cancel_token = token;
  options.mip.num_threads = GetParam();

  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token->cancel();
  });
  const mapping::CompleteResult r =
      mapping::map_complete(design, *board, table, options);
  canceller.join();

  // Whatever progress the solve made, it stopped because of the cancel:
  // either no incumbent yet (kCancelled) or a best-effort incumbent
  // (kFeasible) whose stop_reason records the cancellation.
  if (r.status == SolveStatus::kFeasible) {
    EXPECT_EQ(r.mip.stop_reason, SolveStatus::kCancelled);
    EXPECT_LE(r.mip.best_bound, r.mip.objective + 1e-9);
  } else {
    ASSERT_EQ(r.status, SolveStatus::kCancelled);
  }
}

INSTANTIATE_TEST_SUITE_P(SerialAndParallel, MipCancelMidSolve,
                         ::testing::Values(1, 4));

}  // namespace
}  // namespace gmm::ilp
