#include "ilp/cover_cuts.hpp"

#include <gtest/gtest.h>

#include "ilp/mip_solver.hpp"
#include "support/rng.hpp"

namespace gmm::ilp {
namespace {

using lp::Index;
using lp::LinExpr;
using lp::Model;
using lp::Sense;

TEST(CoverCuts, FindsViolatedCover) {
  // 3a + 3b + 3c <= 5: any two items form a cover.  The fractional point
  // (0.8, 0.8, 0.2) violates a+b <= 1; extension pulls c in as well.
  Model m;
  LinExpr row;
  for (int i = 0; i < 3; ++i) row.add(m.add_binary(-1), 3.0);
  m.add_constraint(row, Sense::kLessEqual, 5);
  const auto cuts = separate_cover_cuts(m, {0.8, 0.8, 0.2});
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0].vars.size(), 3u);  // extended cover includes c
  EXPECT_DOUBLE_EQ(cuts[0].rhs, 1.0);
}

TEST(CoverCuts, NoCutAtIntegerPoint) {
  Model m;
  LinExpr row;
  for (int i = 0; i < 3; ++i) row.add(m.add_binary(-1), 3.0);
  m.add_constraint(row, Sense::kLessEqual, 5);
  EXPECT_TRUE(separate_cover_cuts(m, {1.0, 0.0, 0.0}).empty());
  EXPECT_TRUE(separate_cover_cuts(m, {0.0, 0.0, 0.0}).empty());
}

TEST(CoverCuts, SkipsNonKnapsackRows) {
  Model m;
  const Index a = m.add_binary(0);
  const Index b = m.add_variable(0, 5, 0);  // continuous
  LinExpr mixed;
  mixed.add(a, 2.0);
  mixed.add(b, 2.0);
  m.add_constraint(mixed, Sense::kLessEqual, 3);
  LinExpr negative;
  negative.add(a, -2.0);
  negative.add(m.add_binary(0), 2.0);
  m.add_constraint(negative, Sense::kLessEqual, 1);
  LinExpr equality;
  equality.add(a, 1.0);
  equality.add(m.add_binary(0), 1.0);
  m.add_constraint(equality, Sense::kEqual, 1);
  EXPECT_TRUE(separate_cover_cuts(m, {0.9, 4.9, 0.9, 0.9}).empty());
}

// Property: cuts never exclude any integer-feasible point.
class CoverCutValidity : public ::testing::TestWithParam<int> {};

TEST_P(CoverCutValidity, CutsAreValidForAllFeasiblePoints) {
  support::Rng rng(5100 + GetParam());
  const int n = static_cast<int>(rng.uniform_int(3, 12));
  Model m;
  std::vector<double> weights(n);
  LinExpr row;
  double total = 0;
  for (int j = 0; j < n; ++j) {
    weights[j] = static_cast<double>(rng.uniform_int(1, 30));
    row.add(m.add_binary(-1), weights[j]);
    total += weights[j];
  }
  const double b = total * 0.5;
  m.add_constraint(row, Sense::kLessEqual, b);

  // A random fractional "LP point" inside the knapsack.
  std::vector<double> x(n);
  for (int j = 0; j < n; ++j) x[j] = rng.uniform_real();
  const auto cuts = separate_cover_cuts(m, x, 16, 1e-9);

  // Exhaustive check over every feasible 0-1 point.
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    double weight = 0;
    for (int j = 0; j < n; ++j) {
      if (mask & (1u << j)) weight += weights[j];
    }
    if (weight > b) continue;  // infeasible point, cuts need not hold
    for (const CoverCut& cut : cuts) {
      double lhs = 0;
      for (const Index v : cut.vars) {
        if (mask & (1u << v)) lhs += 1.0;
      }
      EXPECT_LE(lhs, cut.rhs + 1e-9)
          << "cut excludes feasible point, seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CoverCutValidity, ::testing::Range(0, 25));

TEST(CoverCuts, MipOptimaUnchangedByCuts) {
  support::Rng rng(616);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(6, 16));
    Model m;
    LinExpr row;
    for (int j = 0; j < n; ++j) {
      row.add(m.add_binary(static_cast<double>(-rng.uniform_int(1, 50))),
              static_cast<double>(rng.uniform_int(1, 25)));
    }
    m.add_constraint(row, Sense::kLessEqual,
                     static_cast<double>(rng.uniform_int(10, 60)));
    MipOptions with, without;
    with.max_cut_rounds = 8;
    without.max_cut_rounds = 0;
    with.rel_gap = without.rel_gap = 1e-9;
    const MipResult a = solve_mip(m, with);
    const MipResult b = solve_mip(m, without);
    ASSERT_EQ(a.status, lp::SolveStatus::kOptimal);
    ASSERT_EQ(b.status, lp::SolveStatus::kOptimal);
    EXPECT_NEAR(a.objective, b.objective, 1e-6) << "trial " << trial;
  }
}

TEST(CoverCuts, CutsReduceSearchOnCombinatorialKnapsack) {
  // Equal weights slightly over half the capacity: LP bound is far from
  // the integer optimum and plain B&B flounders; covers close it.
  Model m;
  LinExpr row;
  const int n = 24;
  for (int j = 0; j < n; ++j) {
    row.add(m.add_binary(-10.0 - 0.01 * j), 12.0);
  }
  // 58/12 = 4.83: the LP takes four items plus a fraction, while any
  // five items form a cover.
  m.add_constraint(row, Sense::kLessEqual, 58.0);
  MipOptions with, without;
  with.max_cut_rounds = 8;
  without.max_cut_rounds = 0;
  const MipResult a = solve_mip(m, with);
  const MipResult b = solve_mip(m, without);
  ASSERT_EQ(a.status, lp::SolveStatus::kOptimal);
  ASSERT_EQ(b.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-6);
  EXPECT_LE(a.nodes, b.nodes);
  EXPECT_GT(a.cover_cuts, 0);
}

}  // namespace
}  // namespace gmm::ilp
