#include "ilp/mip_solver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/rng.hpp"

namespace gmm::ilp {
namespace {

using lp::Index;
using lp::LinExpr;
using lp::Model;
using lp::Sense;
using lp::SolveStatus;
using lp::VarType;

// ---- exact reference solvers for small instances -----------------------

/// 0/1 knapsack by dynamic programming over integer weights.
std::int64_t knapsack_dp(const std::vector<std::int64_t>& value,
                         const std::vector<std::int64_t>& weight,
                         std::int64_t capacity) {
  std::vector<std::int64_t> best(capacity + 1, 0);
  for (std::size_t i = 0; i < value.size(); ++i) {
    for (std::int64_t w = capacity; w >= weight[i]; --w) {
      best[w] = std::max(best[w], best[w - weight[i]] + value[i]);
    }
  }
  return best[capacity];
}

TEST(MipSolver, TinyKnapsack) {
  // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6  => {b, c} with value 20.
  Model m;
  const Index a = m.add_binary(-10);
  const Index b = m.add_binary(-13);
  const Index c = m.add_binary(-7);
  LinExpr w;
  w.add(a, 3);
  w.add(b, 4);
  w.add(c, 2);
  m.add_constraint(w, Sense::kLessEqual, 6);
  const MipResult r = solve_mip(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -20.0, 1e-6);
  EXPECT_NEAR(r.x[a], 0.0, 1e-6);
  EXPECT_NEAR(r.x[b], 1.0, 1e-6);
  EXPECT_NEAR(r.x[c], 1.0, 1e-6);
}

class KnapsackSweep : public ::testing::TestWithParam<int> {};

TEST_P(KnapsackSweep, MatchesDynamicProgramming) {
  support::Rng rng(500 + GetParam());
  const int n = static_cast<int>(rng.uniform_int(4, 18));
  std::vector<std::int64_t> value(n), weight(n);
  std::int64_t total = 0;
  for (int i = 0; i < n; ++i) {
    value[i] = rng.uniform_int(1, 60);
    weight[i] = rng.uniform_int(1, 30);
    total += weight[i];
  }
  const std::int64_t capacity = std::max<std::int64_t>(1, total / 2);

  Model m;
  LinExpr w;
  for (int i = 0; i < n; ++i) {
    const Index xi = m.add_binary(static_cast<double>(-value[i]));
    w.add(xi, static_cast<double>(weight[i]));
  }
  m.add_constraint(w, Sense::kLessEqual, static_cast<double>(capacity));
  const MipResult r = solve_mip(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal) << "seed " << GetParam();
  EXPECT_NEAR(-r.objective,
              static_cast<double>(knapsack_dp(value, weight, capacity)),
              1e-6);
  // The incumbent must genuinely satisfy the knapsack.
  double used = 0;
  for (int i = 0; i < n; ++i) used += r.x[i] * static_cast<double>(weight[i]);
  EXPECT_LE(used, static_cast<double>(capacity) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, KnapsackSweep, ::testing::Range(0, 30));

/// Brute-force assignment problem (n <= 7) by permutation enumeration.
double assignment_brute_force(const std::vector<std::vector<double>>& cost) {
  const int n = static_cast<int>(cost.size());
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  double best = std::numeric_limits<double>::infinity();
  do {
    double total = 0;
    for (int i = 0; i < n; ++i) total += cost[i][perm[i]];
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

class AssignmentSweep : public ::testing::TestWithParam<int> {};

TEST_P(AssignmentSweep, MatchesBruteForce) {
  support::Rng rng(900 + GetParam());
  const int n = static_cast<int>(rng.uniform_int(2, 7));
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost) {
    for (double& c : row) c = static_cast<double>(rng.uniform_int(0, 50));
  }
  Model m;
  std::vector<std::vector<Index>> x(n, std::vector<Index>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) x[i][j] = m.add_binary(cost[i][j]);
  }
  for (int i = 0; i < n; ++i) {
    LinExpr row_sum, col_sum;
    for (int j = 0; j < n; ++j) {
      row_sum.add(x[i][j], 1.0);
      col_sum.add(x[j][i], 1.0);
    }
    m.add_constraint(row_sum, Sense::kEqual, 1);
    m.add_constraint(col_sum, Sense::kEqual, 1);
  }
  const MipResult r = solve_mip(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal) << "seed " << GetParam();
  EXPECT_NEAR(r.objective, assignment_brute_force(cost), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AssignmentSweep, ::testing::Range(0, 20));

/// Brute-force set cover over <= 14 subsets.
double set_cover_brute_force(const std::vector<std::uint32_t>& sets,
                             const std::vector<double>& cost,
                             std::uint32_t universe) {
  const int n = static_cast<int>(sets.size());
  double best = std::numeric_limits<double>::infinity();
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::uint32_t covered = 0;
    double total = 0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        covered |= sets[i];
        total += cost[i];
      }
    }
    if ((covered & universe) == universe) best = std::min(best, total);
  }
  return best;
}

class SetCoverSweep : public ::testing::TestWithParam<int> {};

TEST_P(SetCoverSweep, MatchesBruteForce) {
  support::Rng rng(1300 + GetParam());
  const int elements = static_cast<int>(rng.uniform_int(4, 10));
  const int n = static_cast<int>(rng.uniform_int(4, 14));
  const std::uint32_t universe = (1u << elements) - 1;
  std::vector<std::uint32_t> sets(n);
  std::vector<double> cost(n);
  std::uint32_t reachable = 0;
  for (int i = 0; i < n; ++i) {
    for (int e = 0; e < elements; ++e) {
      if (rng.bernoulli(0.35)) sets[i] |= 1u << e;
    }
    cost[i] = static_cast<double>(rng.uniform_int(1, 20));
    reachable |= sets[i];
  }
  if (reachable != universe) {
    sets[0] |= universe & ~reachable;  // force coverability
  }

  Model m;
  for (int i = 0; i < n; ++i) m.add_binary(cost[i]);
  for (int e = 0; e < elements; ++e) {
    LinExpr cover;
    for (int i = 0; i < n; ++i) {
      if (sets[i] & (1u << e)) cover.add(i, 1.0);
    }
    m.add_constraint(cover, Sense::kGreaterEqual, 1);
  }
  const MipResult r = solve_mip(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal) << "seed " << GetParam();
  EXPECT_NEAR(r.objective, set_cover_brute_force(sets, cost, universe), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SetCoverSweep, ::testing::Range(0, 20));

// ---- structural / edge-case tests ---------------------------------------

TEST(MipSolver, InfeasibleIntegerFeasibleRelaxation) {
  // x + y = 1.5 has LP solutions but no binary ones.
  Model m;
  const Index x = m.add_binary(1);
  const Index y = m.add_binary(1);
  LinExpr e;
  e.add(x, 1.0);
  e.add(y, 1.0);
  m.add_constraint(e, Sense::kEqual, 1.5);
  const MipResult r = solve_mip(m);
  EXPECT_EQ(r.status, SolveStatus::kInfeasible);
}

TEST(MipSolver, PureLpPassThrough) {
  Model m;
  const Index x = m.add_variable(0, 3, -1.0);
  m.add_constraint(LinExpr(x, 2.0), Sense::kLessEqual, 4);
  const MipResult r = solve_mip(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -2.0, 1e-8);
}

TEST(MipSolver, GeneralIntegerVariables) {
  // min -(3x + 2y), 2x + y <= 7, x <= 2y, x,y integer in [0,5].
  Model m;
  const Index x = m.add_variable(0, 5, -3, VarType::kInteger);
  const Index y = m.add_variable(0, 5, -2, VarType::kInteger);
  LinExpr c1;
  c1.add(x, 2.0);
  c1.add(y, 1.0);
  m.add_constraint(c1, Sense::kLessEqual, 7);
  LinExpr c2;
  c2.add(x, 1.0);
  c2.add(y, -2.0);
  m.add_constraint(c2, Sense::kLessEqual, 0);
  const MipResult r = solve_mip(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  // Enumerate: y=5 allows x=1 (2x+y=7, x<=2y), giving -(3+10) = -13.
  EXPECT_NEAR(r.objective, -13.0, 1e-6);
}

TEST(MipSolver, EqualityPartition) {
  // Pick a subset of {3,5,7,9} summing to exactly 12 at minimum count.
  const std::vector<double> items{3, 5, 7, 9};
  Model m;
  LinExpr sum;
  for (std::size_t i = 0; i < items.size(); ++i) {
    sum.add(m.add_binary(1.0), items[i]);
  }
  m.add_constraint(sum, Sense::kEqual, 12);
  const MipResult r = solve_mip(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-6);  // {3,9} or {5,7}
}

TEST(MipSolver, NodeLimitReportsHonestStatus) {
  support::Rng rng(31337);
  // A knapsack big enough that one node cannot close it.
  Model m;
  LinExpr w;
  for (int i = 0; i < 30; ++i) {
    const Index xi = m.add_binary(static_cast<double>(-rng.uniform_int(1, 100)));
    w.add(xi, static_cast<double>(rng.uniform_int(1, 50)));
  }
  m.add_constraint(w, Sense::kLessEqual, 100);
  MipOptions options;
  options.node_limit = 1;
  const MipResult r = solve_mip(m, options);
  EXPECT_TRUE(r.status == SolveStatus::kNodeLimit ||
              r.status == SolveStatus::kFeasible);
  if (r.status == SolveStatus::kFeasible) {
    EXPECT_TRUE(r.has_incumbent());
    EXPECT_GE(r.gap(), 0.0);
  }
}

TEST(MipSolver, PrimalHeuristicAccepted) {
  // Heuristic hands over a feasible (suboptimal) point; the solver must
  // accept it as an incumbent and still prove the true optimum of -20.
  Model m;
  const Index a = m.add_binary(-10);
  const Index b = m.add_binary(-13);
  const Index c = m.add_binary(-7);
  LinExpr w;
  w.add(a, 3);
  w.add(b, 4);
  w.add(c, 2);
  m.add_constraint(w, Sense::kLessEqual, 6);
  MipOptions options;
  options.heuristic_period = 1;
  options.primal_heuristic =
      [](const std::vector<double>&) -> std::optional<std::vector<double>> {
    return std::vector<double>{1.0, 0.0, 1.0};  // value 17, feasible
  };
  const MipResult r = solve_mip(m, options);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -20.0, 1e-6);
}

TEST(MipSolver, RejectsInfeasiblePrimalHeuristic) {
  Model m;
  const Index a = m.add_binary(-10);
  const Index b = m.add_binary(-13);
  LinExpr w;
  w.add(a, 3);
  w.add(b, 4);
  m.add_constraint(w, Sense::kLessEqual, 4);
  MipOptions options;
  options.heuristic_period = 1;
  options.primal_heuristic =
      [](const std::vector<double>&) -> std::optional<std::vector<double>> {
    return std::vector<double>{1.0, 1.0};  // violates the row
  };
  const MipResult r = solve_mip(m, options);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -13.0, 1e-6);  // heuristic must not corrupt it
}

TEST(MipSolver, DeterministicAcrossRuns) {
  support::Rng rng(2718);
  Model m;
  LinExpr w;
  for (int i = 0; i < 25; ++i) {
    const Index xi = m.add_binary(static_cast<double>(-rng.uniform_int(1, 40)));
    w.add(xi, static_cast<double>(rng.uniform_int(1, 20)));
  }
  m.add_constraint(w, Sense::kLessEqual, 60);
  const MipResult r1 = solve_mip(m);
  const MipResult r2 = solve_mip(m);
  ASSERT_EQ(r1.status, SolveStatus::kOptimal);
  EXPECT_EQ(r1.nodes, r2.nodes);
  EXPECT_DOUBLE_EQ(r1.objective, r2.objective);
  EXPECT_EQ(r1.x, r2.x);
}

TEST(MipSolver, PresolveOnOffAgree) {
  support::Rng rng(424242);
  Model m;
  LinExpr w;
  for (int i = 0; i < 18; ++i) {
    const Index xi = m.add_binary(static_cast<double>(-rng.uniform_int(1, 30)));
    w.add(xi, static_cast<double>(rng.uniform_int(1, 12)));
  }
  m.add_constraint(w, Sense::kLessEqual, 40);
  // Fix a couple of variables so presolve has work to do.
  m.set_var_bounds(0, 1, 1);
  m.set_var_bounds(1, 0, 0);
  MipOptions with, without;
  with.use_presolve = true;
  without.use_presolve = false;
  const MipResult a = solve_mip(m, with);
  const MipResult b = solve_mip(m, without);
  ASSERT_EQ(a.status, SolveStatus::kOptimal);
  ASSERT_EQ(b.status, SolveStatus::kOptimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-6);
}

}  // namespace
}  // namespace gmm::ilp
