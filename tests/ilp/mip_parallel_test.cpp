// Parallel branch & bound: 1-thread and 8-thread solves of the same model
// must agree.  With rel_gap/abs_gap at 0 both searches prove the exact
// optimum, so the objectives must match to numerical tolerance even
// though the multi-threaded node ORDER is nondeterministic; the returned
// assignments must each be feasible (they may differ when the optimum is
// not unique).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ilp/mip_solver.hpp"
#include "mapping/cost_model.hpp"
#include "mapping/global_mapper.hpp"
#include "support/rng.hpp"
#include "workload/workload_gen.hpp"

namespace gmm::ilp {
namespace {

using lp::Index;
using lp::LinExpr;
using lp::Model;
using lp::Sense;
using lp::SolveStatus;

MipOptions exact_options(int threads) {
  MipOptions options;
  options.num_threads = threads;
  options.rel_gap = 0.0;
  options.abs_gap = 1e-9;
  return options;
}

/// A random multi-constraint 0/1 program: a handful of knapsack rows plus
/// a few generalized-upper-bound rows, the same shape the mapping ILPs
/// take (selection + capacity).
Model random_mip(std::uint64_t seed) {
  support::Rng rng(seed);
  const int n = static_cast<int>(rng.uniform_int(8, 24));
  Model m;
  std::vector<Index> vars;
  for (int j = 0; j < n; ++j) {
    vars.push_back(m.add_binary(static_cast<double>(rng.uniform_int(-40, -1))));
  }
  const int rows = static_cast<int>(rng.uniform_int(2, 5));
  for (int i = 0; i < rows; ++i) {
    LinExpr knap;
    std::int64_t total = 0;
    for (const Index j : vars) {
      if (rng.bernoulli(0.7)) {
        const std::int64_t w = rng.uniform_int(1, 25);
        knap.add(j, static_cast<double>(w));
        total += w;
      }
    }
    if (!knap.empty()) {
      m.add_constraint(knap, Sense::kLessEqual,
                       static_cast<double>(std::max<std::int64_t>(1, total / 2)));
    }
  }
  // A couple of at-most-one groups (the uniqueness rows of the mappers).
  for (int g = 0; g + 3 < n; g += 4) {
    LinExpr group;
    for (int k = 0; k < 4; ++k) group.add(vars[g + k], 1.0);
    m.add_constraint(group, Sense::kLessEqual, 2.0);
  }
  return m;
}

void expect_feasible_incumbent(const Model& m, const MipResult& r) {
  ASSERT_TRUE(r.has_incumbent());
  EXPECT_TRUE(m.is_feasible(r.x, 1e-5));
}

class ParallelEqualsSerial : public ::testing::TestWithParam<int> {};

TEST_P(ParallelEqualsSerial, IdenticalOptimalObjectives) {
  const Model m = random_mip(7700 + GetParam());
  const MipResult serial = solve_mip(m, exact_options(1));
  const MipResult parallel = solve_mip(m, exact_options(8));
  ASSERT_EQ(serial.status, SolveStatus::kOptimal) << "seed " << GetParam();
  ASSERT_EQ(parallel.status, SolveStatus::kOptimal) << "seed " << GetParam();
  EXPECT_NEAR(serial.objective, parallel.objective, 1e-6)
      << "seed " << GetParam();
  expect_feasible_incumbent(m, serial);
  expect_feasible_incumbent(m, parallel);
}

INSTANTIATE_TEST_SUITE_P(Corpus, ParallelEqualsSerial,
                         ::testing::Range(0, 25));

TEST(MipParallel, SerialPathIsDeterministic) {
  // Two 1-thread solves must agree bit for bit: objective, incumbent
  // vector, node count and LP iteration count.
  const Model m = random_mip(991);
  const MipResult a = solve_mip(m, exact_options(1));
  const MipResult b = solve_mip(m, exact_options(1));
  ASSERT_EQ(a.status, SolveStatus::kOptimal);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.lp_iterations, b.lp_iterations);
  ASSERT_EQ(a.x.size(), b.x.size());
  for (std::size_t j = 0; j < a.x.size(); ++j) EXPECT_EQ(a.x[j], b.x[j]);
}

TEST(MipParallel, HardwareConcurrencyRequest) {
  // num_threads = 0 resolves to hardware concurrency and still solves.
  const Model m = random_mip(1234);
  MipOptions options = exact_options(0);
  const MipResult r = solve_mip(m, options);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  expect_feasible_incumbent(m, r);
}

TEST(MipParallel, InfeasibleModelAgrees) {
  Model m;
  const Index a = m.add_binary(-1.0);
  const Index b = m.add_binary(-1.0);
  LinExpr sum;
  sum.add(a, 1.0);
  sum.add(b, 1.0);
  m.add_constraint(sum, Sense::kGreaterEqual, 3.0);  // impossible for 0/1
  EXPECT_EQ(solve_mip(m, exact_options(1)).status, SolveStatus::kInfeasible);
  EXPECT_EQ(solve_mip(m, exact_options(8)).status, SolveStatus::kInfeasible);
}

TEST(MipParallel, NodeLimitStillReportsValidBound) {
  const Model m = random_mip(4242);
  MipOptions options = exact_options(4);
  options.node_limit = 1;
  options.max_cut_rounds = 0;
  const MipResult r = solve_mip(m, options);
  // Whatever the outcome, the proven bound may not exceed any incumbent.
  if (r.has_incumbent()) {
    EXPECT_LE(r.best_bound, r.objective + 1e-9);
    EXPECT_TRUE(m.is_feasible(r.x, 1e-5));
  }
}

TEST(MipParallel, GlobalMapperAgreesAcrossThreadCounts) {
  // The paper workload end-to-end: a Table-3-shaped board/design pair
  // solved through the global ILP with 1 and 8 workers.
  const auto board =
      workload::board_from_totals({.banks = 24, .ports = 36, .configs = 80});
  ASSERT_TRUE(board.has_value());
  workload::DesignGenOptions gen;
  gen.num_segments = 20;
  gen.seed = 77;
  const design::Design design = workload::generate_design(*board, gen);
  const mapping::CostTable table(design, *board);

  mapping::GlobalOptions serial_options;
  serial_options.mip.rel_gap = 0.0;
  mapping::GlobalOptions parallel_options = serial_options;
  parallel_options.mip.num_threads = 8;

  const mapping::GlobalResult serial =
      mapping::map_global(design, *board, table, serial_options);
  const mapping::GlobalResult parallel =
      mapping::map_global(design, *board, table, parallel_options);
  ASSERT_EQ(serial.status, SolveStatus::kOptimal);
  ASSERT_EQ(parallel.status, SolveStatus::kOptimal);
  EXPECT_NEAR(serial.assignment.objective, parallel.assignment.objective,
              1e-6 * std::max(1.0, std::abs(serial.assignment.objective)));
}

}  // namespace
}  // namespace gmm::ilp
