// MIP-start exactness wall over the paper's Table-3 workloads.
//
// A warm incumbent handed to the branch & bound (GlobalOptions'
// warm_assignment -> MipOptions' mip_start) may only ever change how FAST
// the search proves its optimum, never WHICH optimum it proves: the
// search prunes exclusively on proven bounds, so a feasible start — even
// a poor one — tightens pruning without excluding any optimal solution.
// This is asserted with EXACT equality (EXPECT_EQ on doubles) under the
// same sub-integer-gap options as mip_determinism_test, crossed over
// threads {1, 4} and every tractable Table-3 point, for three start
// qualities:
//
//   * the OPTIMAL assignment itself (a replayed cache entry),
//   * a SUBOPTIMAL feasible assignment (the headroom construction —
//     what a stale cache entry amounts to),
//   * a GARBAGE start (rejected by incumbent validation; solve must
//     behave exactly like a cold run).
//
// Pinning (pinned_structures) by contrast DOES constrain the model; the
// last tests assert pins are honored and that pinning structures AT
// their optimal assignment preserves the optimum exactly.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "mapping/cost_model.hpp"
#include "mapping/global_mapper.hpp"
#include "mapping/greedy_mapper.hpp"
#include "workload/table3_suite.hpp"

namespace gmm::ilp {
namespace {

using lp::SolveStatus;

mapping::GlobalOptions exact_options(int threads) {
  mapping::GlobalOptions options;
  options.mip.num_threads = threads;
  options.mip.rel_gap = 0.0;
  // Exact for the integer-valued mapping objectives (see
  // mip_determinism_test): nothing optimal is ever pruned, without
  // enumerating the whole co-optimal plateau.
  options.mip.abs_gap = 0.5;
  return options;
}

class Table3MipStart : public ::testing::TestWithParam<int> {};

TEST_P(Table3MipStart, FeasibleStartNeverChangesTheProvedOptimum) {
  const workload::Table3Point& point =
      workload::table3_points()[static_cast<std::size_t>(GetParam())];
  const workload::Table3Instance instance = workload::build_instance(point);
  const mapping::CostTable table(instance.design, instance.board);

  const mapping::GlobalResult cold = mapping::map_global(
      instance.design, instance.board, table, exact_options(1));
  ASSERT_EQ(cold.status, SolveStatus::kOptimal) << "point " << point.index;
  ASSERT_TRUE(cold.assignment.complete());

  // A suboptimal-but-feasible start from the greedy baseline — what a
  // stale cache entry amounts to.  Greedy construction can legitimately
  // fail where the ILP succeeds (it is blind to global trade-offs); the
  // suboptimal-start case is skipped on those points.
  const mapping::GreedyResult greedy =
      mapping::map_greedy(instance.design, instance.board, table);

  for (const int threads : {1, 4}) {
    // Optimal start — the exact-hit replay scenario.
    {
      mapping::GlobalOptions options = exact_options(threads);
      options.warm_assignment = cold.assignment.type_of;
      const mapping::GlobalResult warm = mapping::map_global(
          instance.design, instance.board, table, options);
      ASSERT_EQ(warm.status, SolveStatus::kOptimal)
          << "point " << point.index << ", " << threads << " threads";
      EXPECT_TRUE(warm.mip.mip_start_used)
          << "point " << point.index << ", " << threads << " threads";
      EXPECT_EQ(warm.assignment.objective, cold.assignment.objective)
          << "point " << point.index << ", " << threads << " threads";
    }
    // Suboptimal feasible start — a stale prior must not cap quality.
    if (greedy.success) {
      mapping::GlobalOptions options = exact_options(threads);
      options.warm_assignment = greedy.assignment.type_of;
      const mapping::GlobalResult warm = mapping::map_global(
          instance.design, instance.board, table, options);
      ASSERT_EQ(warm.status, SolveStatus::kOptimal)
          << "point " << point.index << ", " << threads << " threads";
      EXPECT_TRUE(warm.mip.mip_start_used)
          << "point " << point.index << ", " << threads << " threads";
      EXPECT_EQ(warm.assignment.objective, cold.assignment.objective)
          << "point " << point.index << ", " << threads << " threads";
      ASSERT_TRUE(warm.assignment.complete());
      EXPECT_EQ(table.assignment_objective(warm.assignment.type_of),
                cold.assignment.objective)
          << "point " << point.index << ", " << threads << " threads";
    }
    // Garbage start (every entry -1): voided before the solve, which
    // must then behave exactly like a cold run.
    {
      mapping::GlobalOptions options = exact_options(threads);
      options.warm_assignment.assign(instance.design.size(), -1);
      const mapping::GlobalResult warm = mapping::map_global(
          instance.design, instance.board, table, options);
      ASSERT_EQ(warm.status, SolveStatus::kOptimal)
          << "point " << point.index << ", " << threads << " threads";
      EXPECT_FALSE(warm.mip.mip_start_used)
          << "point " << point.index << ", " << threads << " threads";
      EXPECT_EQ(warm.assignment.objective, cold.assignment.objective)
          << "point " << point.index << ", " << threads << " threads";
    }
  }
}

TEST_P(Table3MipStart, PinningAtTheOptimumPreservesItExactly) {
  const workload::Table3Point& point =
      workload::table3_points()[static_cast<std::size_t>(GetParam())];
  const workload::Table3Instance instance = workload::build_instance(point);
  const mapping::CostTable table(instance.design, instance.board);

  const mapping::GlobalResult cold = mapping::map_global(
      instance.design, instance.board, table, exact_options(1));
  ASSERT_EQ(cold.status, SolveStatus::kOptimal) << "point " << point.index;

  // Pin every other structure onto its optimal type: the remaining free
  // delta must still find the global optimum (it contains it).
  mapping::GlobalOptions options = exact_options(1);
  options.warm_assignment = cold.assignment.type_of;
  for (std::size_t d = 0; d < instance.design.size(); d += 2) {
    options.pinned_structures.push_back(d);
  }
  const mapping::GlobalResult pinned = mapping::map_global(
      instance.design, instance.board, table, options);
  ASSERT_EQ(pinned.status, SolveStatus::kOptimal) << "point " << point.index;
  EXPECT_EQ(pinned.assignment.objective, cold.assignment.objective)
      << "point " << point.index;
  for (const std::size_t d : options.pinned_structures) {
    EXPECT_EQ(pinned.assignment.type_of[d], cold.assignment.type_of[d])
        << "point " << point.index << ", structure " << d;
  }
}

TEST_P(Table3MipStart, MigrationPenaltyReportsThePureObjective) {
  const workload::Table3Point& point =
      workload::table3_points()[static_cast<std::size_t>(GetParam())];
  const workload::Table3Instance instance = workload::build_instance(point);
  const mapping::CostTable table(instance.design, instance.board);

  const mapping::GlobalResult cold = mapping::map_global(
      instance.design, instance.board, table, exact_options(1));
  ASSERT_EQ(cold.status, SolveStatus::kOptimal) << "point " << point.index;

  // Warm at the optimum with a migration term: staying put costs
  // nothing, so the penalized solve keeps the optimal assignment and the
  // REPORTED objective (recomputed pure) equals the cold optimum.
  mapping::GlobalOptions options = exact_options(1);
  options.warm_assignment = cold.assignment.type_of;
  options.migration_penalty = 0.25;
  const mapping::GlobalResult warm = mapping::map_global(
      instance.design, instance.board, table, options);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal) << "point " << point.index;
  EXPECT_EQ(warm.assignment.objective, cold.assignment.objective)
      << "point " << point.index;
  ASSERT_TRUE(warm.assignment.complete());
  EXPECT_EQ(table.assignment_objective(warm.assignment.type_of),
            warm.assignment.objective)
      << "point " << point.index;
}

// The same tractable Table-3 points as mip_determinism_test (index 5 —
// the paper's deeply symmetric point 6 — takes tens of seconds to prove
// exactly and is covered by the benches instead).
INSTANTIATE_TEST_SUITE_P(TractablePoints, Table3MipStart,
                         ::testing::Values(0, 1, 2, 3, 4, 6, 7, 8));

}  // namespace
}  // namespace gmm::ilp
