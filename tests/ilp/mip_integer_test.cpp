// Differential tests for general-integer MILPs: equality systems, mixed
// integer/continuous models, and bounded enumeration cross-checks.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "ilp/mip_solver.hpp"
#include "support/rng.hpp"

namespace gmm::ilp {
namespace {

using lp::Index;
using lp::LinExpr;
using lp::Model;
using lp::Sense;
using lp::SolveStatus;

/// Brute-force a pure-integer model by enumerating the (small) box.
double brute_force(const Model& model) {
  const Index n = model.num_vars();
  std::vector<double> x(n);
  double best = std::numeric_limits<double>::infinity();
  std::function<void(Index)> recurse = [&](Index j) {
    if (j == n) {
      if (model.is_feasible(x, 1e-9)) {
        best = std::min(best, model.objective_value(x));
      }
      return;
    }
    for (double v = model.var_lb(j); v <= model.var_ub(j) + 1e-9; v += 1.0) {
      x[j] = v;
      recurse(j + 1);
    }
  };
  recurse(0);
  return best;
}

class IntegerBoxSweep : public ::testing::TestWithParam<int> {};

TEST_P(IntegerBoxSweep, MatchesBruteForceEnumeration) {
  support::Rng rng(7500 + GetParam());
  const int n = static_cast<int>(rng.uniform_int(2, 5));
  Model m;
  for (int j = 0; j < n; ++j) {
    const double lb = static_cast<double>(rng.uniform_int(-2, 1));
    m.add_variable(lb, lb + static_cast<double>(rng.uniform_int(1, 4)),
                   static_cast<double>(rng.uniform_int(-6, 6)),
                   lp::VarType::kInteger);
  }
  const int rows = static_cast<int>(rng.uniform_int(1, 4));
  for (int i = 0; i < rows; ++i) {
    LinExpr e;
    for (int j = 0; j < n; ++j) {
      if (rng.bernoulli(0.6)) {
        const double a = static_cast<double>(rng.uniform_int(-3, 3));
        if (a != 0) e.add(j, a);
      }
    }
    if (e.empty()) continue;
    const double rhs = static_cast<double>(rng.uniform_int(-4, 8));
    const int which = static_cast<int>(rng.uniform_int(0, 2));
    m.add_constraint(e,
                     which == 0   ? Sense::kLessEqual
                     : which == 1 ? Sense::kGreaterEqual
                                  : Sense::kEqual,
                     rhs);
  }
  MipOptions options;
  options.rel_gap = 1e-9;
  const MipResult r = solve_mip(m, options);
  const double reference = brute_force(m);
  if (std::isinf(reference)) {
    EXPECT_EQ(r.status, SolveStatus::kInfeasible) << "seed " << GetParam();
  } else {
    ASSERT_EQ(r.status, SolveStatus::kOptimal) << "seed " << GetParam();
    EXPECT_NEAR(r.objective, reference, 1e-6) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IntegerBoxSweep, ::testing::Range(0, 40));

TEST(MixedInteger, ContinuousTailFollowsIntegers) {
  // min -3y - x  s.t. x <= 2.5 y, x <= 4, y binary:
  // y=1 -> x=2.5 -> objective -5.5.
  Model m;
  const Index x = m.add_variable(0, 4, -1.0);
  const Index y = m.add_binary(-3.0);
  LinExpr link;
  link.add(x, 1.0);
  link.add(y, -2.5);
  m.add_constraint(link, Sense::kLessEqual, 0.0);
  const MipResult r = solve_mip(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -5.5, 1e-6);
  EXPECT_NEAR(r.x[x], 2.5, 1e-6);
  EXPECT_NEAR(r.x[y], 1.0, 1e-6);
}

TEST(MixedInteger, EqualityWithContinuousSlack) {
  // 2a + 3b + c = 7 with a,b integer in [0,3], c continuous in [0, 0.5]:
  // minimize c => need 2a+3b in [6.5, 7] => (2,1) gives 7, c=0.
  Model m;
  const Index a = m.add_variable(0, 3, 0.0, lp::VarType::kInteger);
  const Index b = m.add_variable(0, 3, 0.0, lp::VarType::kInteger);
  const Index c = m.add_variable(0, 0.5, 1.0);
  LinExpr e;
  e.add(a, 2.0);
  e.add(b, 3.0);
  e.add(c, 1.0);
  m.add_constraint(e, Sense::kEqual, 7.0);
  const MipResult r = solve_mip(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-6);
  EXPECT_NEAR(r.x[c], 0.0, 1e-6);
}

TEST(MixedInteger, TimeLimitZeroStillReportsHonestly) {
  Model m;
  LinExpr w;
  support::Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    w.add(m.add_binary(static_cast<double>(-rng.uniform_int(1, 9))),
          static_cast<double>(rng.uniform_int(1, 9)));
  }
  m.add_constraint(w, Sense::kLessEqual, 30);
  MipOptions options;
  options.time_limit_seconds = 0.0;
  const MipResult r = solve_mip(m, options);
  // Either nothing happened yet (time-limit) or a heuristic already found
  // something (feasible) — never a false "optimal/infeasible".
  EXPECT_TRUE(r.status == SolveStatus::kTimeLimit ||
              r.status == SolveStatus::kFeasible);
}

}  // namespace
}  // namespace gmm::ilp
