// Solver determinism regression over the paper's Table-3 workloads: the
// same global-mapping model solved with num_threads ∈ {1, 2, 4, 8} —
// crossed with the basis warm-start cache on (max_stored_bases = 4096),
// off (= 0), and capped tiny (= 3, constant eviction churn) — must
// return identical objectives.  The cache only changes how fast a popped
// node re-solves, never which LP optimum a node proves, so it must never
// change WHAT the search finds.  Under exact (sub-integer gap) options the equality is
// EXACT (EXPECT_EQ on the doubles): the parallel search only ever prunes
// on proven bounds, so every thread count proves the same optimum, and
// the default cost weights make every objective an integer-valued sum
// that doubles represent exactly.  (If a future cost model introduces
// fractional weights, relax the zero-gap checks to EXPECT_NEAR.)
//
// "Identical incumbents" is asserted at the level the solver guarantees:
// every thread count's incumbent decodes to a complete assignment whose
// CostTable objective equals the serial optimum exactly.  The incumbent
// VECTORS may legitimately differ across thread counts when the optimum
// is not unique (the nondeterministic node order picks among co-optimal
// solutions); vector-level determinism is asserted where it is promised —
// repeated 1-thread runs — in SerialRunsAreBitwiseIdentical.
#include <gtest/gtest.h>

#include <vector>

#include "mapping/cost_model.hpp"
#include "mapping/global_mapper.hpp"
#include "workload/table3_suite.hpp"

namespace gmm::ilp {
namespace {

using lp::SolveStatus;

mapping::GlobalOptions exact_options(int threads,
                                     std::size_t max_stored_bases = 4096,
                                     lp::LpEngine engine = lp::LpEngine::kDense) {
  mapping::GlobalOptions options;
  options.mip.num_threads = threads;
  options.mip.max_stored_bases = max_stored_bases;
  options.mip.lp_engine = engine;
  options.mip.rel_gap = 0.0;
  // 0.5 is EXACT for the integer-valued mapping objectives (any strictly
  // better incumbent improves by >= 1, so nothing optimal is ever
  // pruned), while a literal 0.0 makes the search enumerate the whole
  // co-optimal plateau — Table-3 point 6 takes minutes that way.
  options.mip.abs_gap = 0.5;
  return options;
}

class Table3Determinism : public ::testing::TestWithParam<int> {};

TEST_P(Table3Determinism, IdenticalObjectivesAcrossThreadsAndCacheModes) {
  const workload::Table3Point& point =
      workload::table3_points()[static_cast<std::size_t>(GetParam())];
  const workload::Table3Instance instance = workload::build_instance(point);
  const mapping::CostTable table(instance.design, instance.board);

  const mapping::GlobalResult serial = mapping::map_global(
      instance.design, instance.board, table, exact_options(1));
  ASSERT_EQ(serial.status, SolveStatus::kOptimal) << "point " << point.index;

  // Thread counts crossed with the warm-start cache wide open, disabled,
  // and squeezed to 3 slots (every push evicts): the cache may only ever
  // change solve SPEED, so every combination proves the same optimum.
  for (const std::size_t cap : {std::size_t{4096}, std::size_t{0},
                                std::size_t{3}}) {
    for (const int threads : {1, 2, 4, 8}) {
      if (threads == 1 && cap == 4096) continue;  // the reference itself
      const mapping::GlobalResult parallel = mapping::map_global(
          instance.design, instance.board, table,
          exact_options(threads, cap));
      ASSERT_EQ(parallel.status, SolveStatus::kOptimal)
          << "point " << point.index << ", " << threads << " threads, cap "
          << cap;
      EXPECT_EQ(parallel.assignment.objective, serial.assignment.objective)
          << "point " << point.index << ", " << threads << " threads, cap "
          << cap;

      // The cache's own accounting must be consistent with its mode.
      const lp::BasisCacheStats& basis = parallel.mip.basis;
      if (cap == 0) {
        EXPECT_EQ(basis.stored, 0);
        EXPECT_EQ(basis.loaded, 0);
        EXPECT_EQ(basis.evicted, 0);
      } else {
        EXPECT_LE(basis.loaded + basis.evicted, basis.stored);
      }

      // Incumbent identity at the guaranteed level: a complete assignment
      // whose recomputed objective is exactly the serial optimum.
      ASSERT_TRUE(parallel.assignment.complete());
      ASSERT_EQ(parallel.assignment.type_of.size(), instance.design.size());
      for (const int t : parallel.assignment.type_of) {
        ASSERT_GE(t, 0);
        ASSERT_LT(t, static_cast<int>(instance.board.num_types()));
      }
      EXPECT_EQ(table.assignment_objective(parallel.assignment.type_of),
                serial.assignment.objective)
          << "point " << point.index << ", " << threads << " threads, cap "
          << cap;
    }
  }
}

TEST_P(Table3Determinism, IdenticalObjectivesAcrossBackendsAndThreads) {
  // The lp::LpBackend contract crossed with the parallel-search contract:
  // every (engine, thread count) cell of the grid proves the SAME optimum
  // as the serial dense reference, exactly.  The sparse revised simplex
  // pivots through different intermediate bases than the dense tableau
  // (different tie-breaking among degenerate vertices is fine), but an
  // optimum it proves is an optimum, so the objective may not move.
  const workload::Table3Point& point =
      workload::table3_points()[static_cast<std::size_t>(GetParam())];
  const workload::Table3Instance instance = workload::build_instance(point);
  const mapping::CostTable table(instance.design, instance.board);

  const mapping::GlobalResult reference = mapping::map_global(
      instance.design, instance.board, table, exact_options(1));
  ASSERT_EQ(reference.status, SolveStatus::kOptimal) << "point " << point.index;

  for (const lp::LpEngine engine :
       {lp::LpEngine::kDense, lp::LpEngine::kSparse}) {
    for (const int threads : {1, 2, 8}) {
      if (engine == lp::LpEngine::kDense && threads == 1) continue;
      const mapping::GlobalResult cell = mapping::map_global(
          instance.design, instance.board, table,
          exact_options(threads, 4096, engine));
      ASSERT_EQ(cell.status, SolveStatus::kOptimal)
          << "point " << point.index << ", " << lp::to_string(engine) << ", "
          << threads << " threads";
      EXPECT_EQ(cell.assignment.objective, reference.assignment.objective)
          << "point " << point.index << ", " << lp::to_string(engine) << ", "
          << threads << " threads";
      ASSERT_TRUE(cell.assignment.complete());
      EXPECT_EQ(table.assignment_objective(cell.assignment.type_of),
                reference.assignment.objective)
          << "point " << point.index << ", " << lp::to_string(engine) << ", "
          << threads << " threads";
    }
  }
}

// Every Table-3 experiment point that solves at test-tier speed
// (milliseconds to ~300 ms per thread count).  Index 5 — the paper's
// point 6, 62 segments on the 65-bank board — is excluded: its LP
// relaxation sits a few units below the integer optimum over a deeply
// symmetric space, so any proof (exact or default-gap) takes tens of
// seconds per solve; it was also the paper's slowest global instance
// relative to size.  That holds even on the sparse revised simplex (it
// cuts arithmetic ~10x but the tree is millions of nodes either way),
// so it stays out of the unit tier: bench_03 sweeps all nine points,
// and bench_09's LP-engine A/B solves point 6 to proof on both engines.
INSTANTIATE_TEST_SUITE_P(TractablePoints, Table3Determinism,
                         ::testing::Values(0, 1, 2, 3, 4, 6, 7, 8));

TEST(Table3Determinism, SerialRunsAreBitwiseIdentical) {
  // Where full determinism IS promised — 1 thread — two runs must agree
  // bit for bit: incumbent vector, node count, LP iterations.  The cache
  // (on, off, or thrashing-tiny) must preserve that promise: its push,
  // pop, and FIFO-eviction order is a pure function of the serial search
  // order.  Runs with DIFFERENT cache settings may legitimately differ in
  // node counts (warm starts land on different optimal LP vertices); runs
  // with the SAME settings may not differ at all.
  const workload::Table3Instance instance =
      workload::build_instance(workload::table3_points()[2]);
  const mapping::CostTable table(instance.design, instance.board);
  for (const lp::LpEngine engine :
       {lp::LpEngine::kDense, lp::LpEngine::kSparse})
  for (const std::size_t cap : {std::size_t{4096}, std::size_t{0},
                                std::size_t{3}}) {
    const mapping::GlobalResult a = mapping::map_global(
        instance.design, instance.board, table,
        exact_options(1, cap, engine));
    const mapping::GlobalResult b = mapping::map_global(
        instance.design, instance.board, table,
        exact_options(1, cap, engine));
    ASSERT_EQ(a.status, SolveStatus::kOptimal) << "cap " << cap;
    EXPECT_EQ(a.assignment.objective, b.assignment.objective) << "cap " << cap;
    EXPECT_EQ(a.assignment.type_of, b.assignment.type_of) << "cap " << cap;
    EXPECT_EQ(a.mip.nodes, b.mip.nodes) << "cap " << cap;
    EXPECT_EQ(a.mip.lp_iterations, b.mip.lp_iterations) << "cap " << cap;
    EXPECT_EQ(a.mip.basis.stored, b.mip.basis.stored) << "cap " << cap;
    EXPECT_EQ(a.mip.basis.loaded, b.mip.basis.loaded) << "cap " << cap;
    EXPECT_EQ(a.mip.basis.evicted, b.mip.basis.evicted) << "cap " << cap;
    ASSERT_EQ(a.mip.x.size(), b.mip.x.size()) << "cap " << cap;
    for (std::size_t j = 0; j < a.mip.x.size(); ++j) {
      EXPECT_EQ(a.mip.x[j], b.mip.x[j]) << "column " << j << ", cap " << cap;
    }
  }
}

TEST(Table3Determinism, DefaultGapObjectivesAgreeWithinGap) {
  // With the production default gap (1e-4) the objectives may differ by
  // at most that relative gap across thread counts — the contract the
  // mapping service relies on when callers pick "threads".
  for (const int index : {3, 4}) {
    const workload::Table3Instance instance = workload::build_instance(
        workload::table3_points()[static_cast<std::size_t>(index)]);
    const mapping::CostTable table(instance.design, instance.board);
    mapping::GlobalOptions defaults;
    const mapping::GlobalResult serial = mapping::map_global(
        instance.design, instance.board, table, defaults);
    ASSERT_EQ(serial.status, SolveStatus::kOptimal) << "index " << index;
    for (const int threads : {2, 8}) {
      mapping::GlobalOptions options;
      options.mip.num_threads = threads;
      const mapping::GlobalResult parallel = mapping::map_global(
          instance.design, instance.board, table, options);
      ASSERT_EQ(parallel.status, SolveStatus::kOptimal)
          << "index " << index << ", " << threads << " threads";
      EXPECT_NEAR(parallel.assignment.objective, serial.assignment.objective,
                  defaults.mip.rel_gap *
                          std::abs(serial.assignment.objective) +
                      1e-9)
          << "index " << index << ", " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace gmm::ilp
