// End-to-end jsonl service test: spawns the real mapper_serve binary
// (path injected by CMake as GMM_MAPPER_SERVE_PATH) and drives one full
// client session over its stdin/stdout:
//
//   * a liveness ping,
//   * 8 concurrent mapping requests whose placements and objectives are
//     checked against in-process map_pipeline runs of the same designs,
//   * a stats round-trip whose request accounting and aggregate solver
//     counters must reflect those 8 solves,
//   * a deadline-limited request that must come back "timeout",
//   * a cancelled request that must come back "cancelled",
//   * a graceful shutdown (ack, clean exit code, no hang).
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "arch/arch_io.hpp"
#include "design/design_io.hpp"
#include "mapping/pipeline.hpp"
#include "service/json.hpp"
#include "service/process_client.hpp"
#include "service/protocol.hpp"
#include "workload/workload_gen.hpp"

namespace gmm::service {
namespace {

#ifndef GMM_MAPPER_SERVE_PATH
#define GMM_MAPPER_SERVE_PATH ""
#endif

constexpr double kReadTimeout = 120.0;  // generous: CI boxes can be slow

arch::Board small_board() {
  return *workload::board_from_totals({.banks = 23, .ports = 45,
                                       .configs = 100});
}

arch::Board big_board() {
  return *workload::board_from_totals({.banks = 180, .ports = 265,
                                       .configs = 375});
}

design::Design client_design(int i) {
  workload::DesignGenOptions gen;
  gen.num_segments = 8 + i;
  gen.seed = 1000 + static_cast<std::uint64_t>(i);
  return workload::generate_design(small_board(), gen);
}

/// Reads responses until every id in `wanted` has one (map responses
/// only; acks pass through into `acks`).
bool collect(ProcessClient& client, std::set<std::string> wanted,
             std::map<std::string, Response>& out,
             std::vector<Response>* acks = nullptr) {
  while (!wanted.empty()) {
    const auto line = client.read_line(kReadTimeout);
    if (!line.has_value()) {
      ADD_FAILURE() << "server went silent while waiting for "
                    << wanted.size() << " response(s)";
      return false;
    }
    const JsonParseResult parsed = parse_json(*line);
    EXPECT_TRUE(parsed.ok) << *line;
    if (!parsed.ok) return false;
    Response response;
    EXPECT_TRUE(Response::from_json(parsed.value, response)) << *line;
    if (response.method == "map") {
      EXPECT_TRUE(wanted.contains(response.id))
          << "unexpected/duplicate terminal response " << *line;
      wanted.erase(response.id);
      out.emplace(response.id, std::move(response));
    } else if (acks != nullptr) {
      acks->push_back(std::move(response));
    }
  }
  return true;
}

TEST(ServiceJsonl, FullSessionAgainstRealServer) {
  if (std::string(GMM_MAPPER_SERVE_PATH).empty()) {
    GTEST_SKIP() << "mapper_serve path not configured";
  }
  const std::string board_file = "service_jsonl_test_board.txt";
  {
    std::ofstream out(board_file);
    ASSERT_TRUE(out.good());
    arch::write_board(out, small_board());
  }

  ProcessClient client;
  if (!client.start(GMM_MAPPER_SERVE_PATH,
                    {board_file, "--workers", "4"})) {
    GTEST_SKIP() << "cannot spawn subprocesses on this platform";
  }

  // -- liveness ----------------------------------------------------------
  ASSERT_TRUE(client.send_line(R"({"id":"hello","method":"ping"})"));
  const auto pong = client.read_line(kReadTimeout);
  ASSERT_TRUE(pong.has_value()) << "no ping response";
  EXPECT_NE(pong->find("\"status\":\"ok\""), std::string::npos) << *pong;

  // -- 8 concurrent mapping requests ------------------------------------
  constexpr int kConcurrent = 8;
  std::vector<design::Design> designs;
  std::set<std::string> ids;
  for (int i = 0; i < kConcurrent; ++i) {
    designs.push_back(client_design(i));
    JsonObject request;
    const std::string id = "m" + std::to_string(i);
    request["id"] = id;
    request["method"] = std::string("map");
    request["board"] = small_board().name();
    request["design_text"] = design::design_to_string(designs.back());
    request["threads"] = 1;
    ASSERT_TRUE(client.send_line(Json(std::move(request)).dump()));
    ids.insert(id);
  }
  std::map<std::string, Response> responses;
  ASSERT_TRUE(collect(client, ids, responses));

  const arch::Board board = small_board();
  for (int i = 0; i < kConcurrent; ++i) {
    const Response& r = responses.at("m" + std::to_string(i));
    ASSERT_EQ(r.status, ResponseStatus::kOk) << r.error;
    EXPECT_EQ(r.solve_status, "optimal");
    // Correctness: the served objective matches a local deterministic
    // (1-thread) run of the same pipeline, and every segment is placed
    // on a bank type that exists on the board.
    const mapping::PipelineResult local =
        mapping::map_pipeline(designs[static_cast<std::size_t>(i)], board);
    ASSERT_EQ(local.status, lp::SolveStatus::kOptimal);
    EXPECT_NEAR(r.objective, local.assignment.objective,
                1e-6 * std::max(1.0, std::abs(local.assignment.objective)));
    std::set<std::string> type_names;
    for (const arch::BankType& t : board.types()) type_names.insert(t.name);
    std::set<std::string> placed;
    for (const PlacementEntry& p : r.placements) {
      placed.insert(p.segment);
      EXPECT_TRUE(type_names.contains(p.type)) << p.type;
      EXPECT_GE(p.ports, 1);
    }
    std::set<std::string> expected;
    for (const auto& ds : designs[static_cast<std::size_t>(i)].structures()) {
      expected.insert(ds.name);
    }
    EXPECT_EQ(placed, expected) << "m" << i;
  }

  // -- stats round-trip --------------------------------------------------
  // All 8 map responses are on the wire, so the counters are settled:
  // 8 accepted, 8 completed, 8 solves, and at least one B&B node each.
  ASSERT_TRUE(client.send_line(R"({"id":"st","method":"stats"})"));
  {
    const auto line = client.read_line(kReadTimeout);
    ASSERT_TRUE(line.has_value()) << "no stats response";
    const JsonParseResult parsed = parse_json(*line);
    ASSERT_TRUE(parsed.ok) << *line;
    Response stats;
    ASSERT_TRUE(Response::from_json(parsed.value, stats)) << *line;
    EXPECT_EQ(stats.id, "st");
    EXPECT_EQ(stats.method, "stats");
    EXPECT_EQ(stats.status, ResponseStatus::kOk);
    ASSERT_TRUE(stats.has_stats) << *line;
    EXPECT_EQ(stats.stats.accepted, kConcurrent);
    EXPECT_EQ(stats.stats.completed, kConcurrent);
    EXPECT_EQ(stats.stats.rejected, 0);
    EXPECT_EQ(stats.stats.solves, kConcurrent);
    EXPECT_GE(stats.stats.nodes, kConcurrent);
    EXPECT_GT(stats.stats.lp_iterations, 0);
    EXPECT_LE(stats.stats.basis.loaded + stats.stats.basis.evicted,
              stats.stats.basis.stored);
  }

  // -- sharded mapping on an inline dual-device board --------------------
  // A deliberately slack design: a split board loses co-location options,
  // so a near-saturating workload would be legitimately unshardable.
  workload::DesignGenOptions shard_gen;
  shard_gen.num_segments = 6;
  shard_gen.seed = 77;
  shard_gen.target_port_utilization = 0.3;
  shard_gen.target_bit_utilization = 0.25;
  const design::Design shard_design =
      workload::generate_design(small_board(), shard_gen);
  {
    const arch::Board dual = arch::split_across_devices(small_board(), 2);
    JsonObject request;
    request["id"] = std::string("sharded");
    request["method"] = std::string("map");
    request["board_text"] = arch::board_to_string(dual);
    request["design_text"] = design::design_to_string(shard_design);
    request["formulation"] = std::string("sharded");
    ASSERT_TRUE(client.send_line(Json(std::move(request)).dump()));
  }
  std::map<std::string, Response> sharded_response;
  ASSERT_TRUE(collect(client, {"sharded"}, sharded_response));
  {
    const Response& r = sharded_response.at("sharded");
    ASSERT_EQ(r.status, ResponseStatus::kOk) << r.error;
    EXPECT_GE(r.shards, 1);
    EXPECT_GE(r.stitch_cost, 0.0);
    std::set<std::string> placed;
    for (const PlacementEntry& p : r.placements) placed.insert(p.segment);
    std::set<std::string> expected;
    for (const auto& ds : shard_design.structures()) {
      expected.insert(ds.name);
    }
    EXPECT_EQ(placed, expected);
  }

  // -- deadline-limited request -> timeout -------------------------------
  // The flat complete formulation of a 64-segment design on the big
  // Table-3 board solves for seconds; 150 ms cannot finish it.
  workload::DesignGenOptions slow_gen;
  slow_gen.num_segments = 64;
  slow_gen.seed = 5;
  const std::string slow_design = design::design_to_string(
      workload::generate_design(big_board(), slow_gen));
  {
    JsonObject request;
    request["id"] = std::string("tardy");
    request["method"] = std::string("map");
    request["board_text"] = arch::board_to_string(big_board());
    request["design_text"] = slow_design;
    request["formulation"] = std::string("complete");
    request["deadline_ms"] = 150;
    ASSERT_TRUE(client.send_line(Json(std::move(request)).dump()));
  }
  std::map<std::string, Response> timeout_response;
  ASSERT_TRUE(collect(client, {"tardy"}, timeout_response));
  EXPECT_EQ(timeout_response.at("tardy").status, ResponseStatus::kTimeout);

  // -- cancelled request -> cancelled ------------------------------------
  {
    JsonObject request;
    request["id"] = std::string("doomed");
    request["method"] = std::string("map");
    request["board_text"] = arch::board_to_string(big_board());
    request["design_text"] = slow_design;
    request["formulation"] = std::string("complete");
    ASSERT_TRUE(client.send_line(Json(std::move(request)).dump()));
    ASSERT_TRUE(client.send_line(
        R"({"id":"c1","method":"cancel","target":"doomed"})"));
  }
  std::map<std::string, Response> cancel_response;
  std::vector<Response> acks;
  ASSERT_TRUE(collect(client, {"doomed"}, cancel_response, &acks));
  EXPECT_EQ(cancel_response.at("doomed").status, ResponseStatus::kCancelled);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].method, "cancel");
  EXPECT_TRUE(acks[0].found);

  // -- graceful shutdown -------------------------------------------------
  ASSERT_TRUE(client.send_line(R"({"method":"shutdown"})"));
  const auto ack = client.read_line(kReadTimeout);
  ASSERT_TRUE(ack.has_value()) << "no shutdown ack";
  EXPECT_NE(ack->find("\"method\":\"shutdown\""), std::string::npos) << *ack;
  client.close_stdin();
  EXPECT_EQ(client.wait_exit(30.0), 0);
}

TEST(ServiceJsonl, MalformedLinesGetErrorResponsesAndEofDrains) {
  if (std::string(GMM_MAPPER_SERVE_PATH).empty()) {
    GTEST_SKIP() << "mapper_serve path not configured";
  }
  ProcessClient client;
  if (!client.start(GMM_MAPPER_SERVE_PATH, {})) {  // no boards loaded
    GTEST_SKIP() << "cannot spawn subprocesses on this platform";
  }
  ASSERT_TRUE(client.send_line("this is not json"));
  ASSERT_TRUE(client.send_line(R"({"id":"x","method":"teleport"})"));
  // No boards and no board_text: a valid request that must fail cleanly.
  ASSERT_TRUE(client.send_line(
      R"({"id":"y","method":"map","design_text":"design d\nsegment a depth 16 width 8\n"})"));
  for (int i = 0; i < 3; ++i) {
    const auto line = client.read_line(kReadTimeout);
    ASSERT_TRUE(line.has_value()) << "missing error response " << i;
    EXPECT_NE(line->find("\"status\":\"error\""), std::string::npos)
        << *line;
  }
  client.close_stdin();  // EOF must drain and exit cleanly
  EXPECT_EQ(client.wait_exit(30.0), 0);
}

}  // namespace
}  // namespace gmm::service
