// Cross-module integration: workload generation -> global/detailed and
// complete mapping -> validation -> simulation, on downsized versions of
// the paper's Table-3 points (full-size runs live in bench/).
#include <gtest/gtest.h>

#include "mapping/complete_mapper.hpp"
#include "mapping/greedy_mapper.hpp"
#include "mapping/pipeline.hpp"
#include "mapping/validate.hpp"
#include "sim/memory_sim.hpp"
#include "workload/table3_suite.hpp"

namespace gmm {
namespace {

TEST(EndToEnd, SmallestTable3PointFullPipeline) {
  const workload::Table3Instance instance =
      workload::build_instance(workload::table3_points().front());

  // Global/detailed; zero-gap options so the parity comparison is exact.
  mapping::PipelineOptions pipeline_options;
  pipeline_options.global.mip.rel_gap = 1e-9;
  const mapping::PipelineResult pipeline = mapping::map_pipeline(
      instance.design, instance.board, pipeline_options);
  ASSERT_EQ(pipeline.status, lp::SolveStatus::kOptimal);
  ASSERT_TRUE(pipeline.detailed.success) << pipeline.detailed.failure;
  EXPECT_TRUE(mapping::validate_mapping(instance.design, instance.board,
                                        pipeline.assignment,
                                        pipeline.detailed)
                  .empty());

  // Complete approach agrees on the objective.
  const mapping::CostTable table(instance.design, instance.board);
  mapping::CompleteOptions complete_options;
  complete_options.mip.rel_gap = 1e-9;
  const mapping::CompleteResult complete = mapping::map_complete(
      instance.design, instance.board, table, complete_options);
  ASSERT_EQ(complete.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(complete.assignment.objective, pipeline.assignment.objective,
              1e-6 * std::max(1.0, pipeline.assignment.objective));

  // The complete model is the bigger formulation.
  EXPECT_GT(complete.model_size.variables, pipeline.model_size.variables);
  EXPECT_GT(complete.model_size.rows, pipeline.model_size.rows);

  // Simulation runs and the ILP-optimal mapping beats greedy (or ties).
  const std::vector<sim::Access> trace = sim::generate_trace(instance.design);
  const sim::SimReport ilp_sim = sim::simulate(
      instance.board, instance.design, pipeline.detailed, trace);
  EXPECT_EQ(ilp_sim.accesses, static_cast<std::int64_t>(trace.size()));

  const mapping::GreedyResult greedy =
      mapping::map_greedy(instance.design, instance.board, table);
  if (greedy.success) {
    const mapping::DetailedMapping greedy_detail = mapping::map_detailed(
        instance.design, instance.board, table, greedy.assignment);
    if (greedy_detail.success) {
      const sim::SimReport greedy_sim = sim::simulate(
          instance.board, instance.design, greedy_detail, trace);
      EXPECT_LE(ilp_sim.latency_sum, greedy_sim.latency_sum);
    }
  }
}

TEST(EndToEnd, GlobalObjectiveMatchesCostTableRecomputation) {
  const workload::Table3Instance instance =
      workload::build_instance(workload::table3_points()[1]);
  const mapping::PipelineResult pipeline =
      mapping::map_pipeline(instance.design, instance.board);
  ASSERT_EQ(pipeline.status, lp::SolveStatus::kOptimal);
  const mapping::CostTable table(instance.design, instance.board);
  EXPECT_NEAR(table.assignment_objective(pipeline.assignment.type_of),
              pipeline.assignment.objective,
              1e-6 * std::max(1.0, pipeline.assignment.objective));
}

TEST(EndToEnd, DetailedMappingNeverChangesTheGlobalCost) {
  // The paper's central claim, end to end: re-costing the assignment
  // after detailed mapping gives the identical objective (placement is
  // cost-neutral because instances of a type are interchangeable).
  const workload::Table3Instance instance =
      workload::build_instance(workload::table3_points()[2]);
  const mapping::PipelineResult pipeline =
      mapping::map_pipeline(instance.design, instance.board);
  ASSERT_EQ(pipeline.status, lp::SolveStatus::kOptimal);
  ASSERT_TRUE(pipeline.detailed.success);
  // Recompute the cost from the *placed fragments'* types.
  const mapping::CostTable table(instance.design, instance.board);
  std::vector<int> placed_types(instance.design.size(), -1);
  for (const mapping::PlacedFragment& f : pipeline.detailed.fragments) {
    if (placed_types[f.ds] < 0) {
      placed_types[f.ds] = static_cast<int>(f.type);
    } else {
      EXPECT_EQ(placed_types[f.ds], static_cast<int>(f.type))
          << "structure split across types";
    }
  }
  EXPECT_NEAR(table.assignment_objective(placed_types),
              pipeline.assignment.objective,
              1e-6 * std::max(1.0, pipeline.assignment.objective));
}

}  // namespace
}  // namespace gmm
