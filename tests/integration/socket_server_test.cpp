// End-to-end socket-transport test: spawns the real `mapper_serve
// --listen` binary and drives it with many CONCURRENT socket clients
// (ProcessClient::connect — the same helper the stdin/stdout tests use,
// so both transports share one driver):
//
//   * 8 concurrent clients over a Unix-domain socket, each running its
//     own map request; per-client responses must route back to the
//     connection that asked, never cross wires;
//   * stats folding in the transport counters (connections, requests,
//     shed, unknown-field count);
//   * v1 flat requests and v2 "options" requests served side by side on
//     different connections, with the version echo per request;
//   * out-of-range solver knobs answered with status "rejected";
//   * deadline and cancel semantics identical to stdin mode, over TCP;
//   * a shutdown from one client draining the server: every other
//     client sees EOF and the process exits 0.
#include <gtest/gtest.h>

#ifndef _WIN32
#include <unistd.h>
#endif

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "arch/arch_io.hpp"
#include "design/design_io.hpp"
#include "service/json.hpp"
#include "service/process_client.hpp"
#include "service/protocol.hpp"
#include "workload/workload_gen.hpp"

namespace gmm::service {
namespace {

#ifndef GMM_MAPPER_SERVE_PATH
#define GMM_MAPPER_SERVE_PATH ""
#endif

constexpr double kReadTimeout = 120.0;  // generous: CI boxes can be slow

arch::Board small_board() {
  return *workload::board_from_totals({.banks = 23, .ports = 45,
                                       .configs = 100});
}

arch::Board big_board() {
  return *workload::board_from_totals({.banks = 180, .ports = 265,
                                       .configs = 375});
}

/// Unix socket paths must fit sockaddr_un's ~108 bytes; build trees
/// often do not, so sockets live under /tmp, keyed by pid for parallel
/// ctest invocations.
std::string scratch_socket_path(const char* tag) {
  long pid = 0;
#ifndef _WIN32
  pid = static_cast<long>(::getpid());
#endif
  return "/tmp/gmm_" + std::string(tag) + "_" + std::to_string(pid) +
         ".sock";
}

/// Spawn `mapper_serve --listen` and wait for its "listening" event;
/// returns the bound endpoint ("" on failure).  For "host:0" the event
/// carries the kernel-assigned port.
std::string spawn_listening_server(ProcessClient& server,
                                   std::vector<std::string> args,
                                   const std::string& listen_spec) {
  args.push_back("--listen");
  args.push_back(listen_spec);
  if (!server.start(GMM_MAPPER_SERVE_PATH, args)) return "";
  const auto event = server.read_line(kReadTimeout);
  if (!event.has_value()) {
    ADD_FAILURE() << "server printed no listening event";
    return "";
  }
  const JsonParseResult parsed = parse_json(*event);
  EXPECT_TRUE(parsed.ok) << *event;
  if (!parsed.ok || !parsed.value.is_object()) return "";
  return parsed.value.get_string("endpoint", "");
}

Response read_response(ProcessClient& client) {
  Response response;
  const auto line = client.read_line(kReadTimeout);
  if (!line.has_value()) {
    ADD_FAILURE() << "server went silent";
    return response;
  }
  const JsonParseResult parsed = parse_json(*line);
  EXPECT_TRUE(parsed.ok) << *line;
  if (parsed.ok) {
    EXPECT_TRUE(Response::from_json(parsed.value, response)) << *line;
  }
  return response;
}

TEST(SocketServer, EightConcurrentClientsOverUnixSocket) {
  if (std::string(GMM_MAPPER_SERVE_PATH).empty()) {
    GTEST_SKIP() << "mapper_serve path not configured";
  }
  const std::string board_file = "socket_server_test_board.txt";
  {
    std::ofstream out(board_file);
    ASSERT_TRUE(out.good());
    arch::write_board(out, small_board());
  }
  ProcessClient server;
  const std::string endpoint = spawn_listening_server(
      server, {board_file, "--workers", "4"}, scratch_socket_path("itest"));
  if (endpoint.empty()) {
    GTEST_SKIP() << "cannot spawn subprocesses on this platform";
  }

  // -- 8 clients, one in-flight map each ---------------------------------
  constexpr int kClients = 8;
  std::vector<std::unique_ptr<ProcessClient>> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<ProcessClient>());
    ASSERT_TRUE(clients.back()->connect(endpoint)) << "client " << i;
  }
  for (int i = 0; i < kClients; ++i) {
    workload::DesignGenOptions gen;
    gen.num_segments = 8 + i;
    gen.seed = 2000 + static_cast<std::uint64_t>(i);
    JsonObject request;
    request["v"] = 2;
    request["id"] = std::string("job-") + std::to_string(i);
    request["method"] = std::string("map");
    request["design_text"] = design::design_to_string(
        workload::generate_design(small_board(), gen));
    JsonObject options;
    options["threads"] = 1;
    options["gap"] = 1e-4;
    request["options"] = Json(std::move(options));
    ASSERT_TRUE(clients[static_cast<std::size_t>(i)]->send_line(
        Json(std::move(request)).dump()));
  }
  for (int i = 0; i < kClients; ++i) {
    const Response r = read_response(*clients[static_cast<std::size_t>(i)]);
    EXPECT_EQ(r.id, "job-" + std::to_string(i)) << "cross-wired response";
    EXPECT_EQ(r.method, "map");
    EXPECT_EQ(r.v, 2) << "v2 request must echo its version";
    EXPECT_EQ(r.status, ResponseStatus::kOk) << r.error;
    EXPECT_EQ(r.solve_status, "optimal");
    EXPECT_FALSE(r.placements.empty());
  }

  // -- unknown top-level fields: ignored, counted ------------------------
  ASSERT_TRUE(clients[0]->send_line(
      R"({"id":"typo","method":"ping","colour":"blue"})"));
  EXPECT_EQ(read_response(*clients[0]).status, ResponseStatus::kOk);

  // -- rejected knobs: structurally valid, out-of-range ------------------
  ASSERT_TRUE(clients[1]->send_line(
      R"({"v":2,"id":"greedy","method":"map","design_text":"d",)"
      R"("options":{"threads":9999}})"));
  {
    const Response r = read_response(*clients[1]);
    EXPECT_EQ(r.id, "greedy");
    EXPECT_EQ(r.status, ResponseStatus::kRejected);
    EXPECT_NE(r.error.find("threads"), std::string::npos) << r.error;
    EXPECT_EQ(r.v, 2);
  }

  // -- stats: request accounting plus the transport section --------------
  ASSERT_TRUE(clients[2]->send_line(R"({"id":"st","method":"stats"})"));
  {
    const Response r = read_response(*clients[2]);
    ASSERT_TRUE(r.has_stats);
    EXPECT_EQ(r.stats.accepted, kClients);
    EXPECT_EQ(r.stats.completed, kClients);
    EXPECT_EQ(r.stats.rejected, 1);  // "greedy"
    EXPECT_EQ(r.stats.unknown_field_requests, 1);  // "typo"
    EXPECT_EQ(r.stats.transport.connections_opened, kClients);
    EXPECT_EQ(r.stats.transport.shed, 1);
    // 8 maps + typo ping + rejected map + this stats request.
    EXPECT_EQ(r.stats.transport.requests, kClients + 3);
    EXPECT_GT(r.stats.transport.bytes_received, 0);
    EXPECT_GT(r.stats.transport.bytes_sent, 0);
  }

  // -- shutdown from one client drains everyone --------------------------
  ASSERT_TRUE(clients[3]->send_line(R"({"id":"bye","method":"shutdown"})"));
  {
    const Response r = read_response(*clients[3]);
    EXPECT_EQ(r.method, "shutdown");
    EXPECT_EQ(r.status, ResponseStatus::kOk);
  }
  for (int i = 0; i < kClients; ++i) {
    // Every connection is closed by the draining server: EOF, not a hang.
    EXPECT_FALSE(
        clients[static_cast<std::size_t>(i)]->read_line(30.0).has_value())
        << "client " << i << " still connected after shutdown";
  }
  EXPECT_EQ(server.wait_exit(30.0), 0);
  std::remove(board_file.c_str());
}

TEST(SocketServer, DeadlineCancelAndV1CompatOverTcp) {
  if (std::string(GMM_MAPPER_SERVE_PATH).empty()) {
    GTEST_SKIP() << "mapper_serve path not configured";
  }
  ProcessClient server;
  const std::string endpoint = spawn_listening_server(
      server, {"--workers", "2"}, "127.0.0.1:0");
  if (endpoint.empty()) {
    GTEST_SKIP() << "cannot spawn subprocesses on this platform";
  }
  EXPECT_NE(endpoint, "127.0.0.1:0") << "kernel-assigned port not reported";

  const std::string big_board_text = arch::board_to_string(big_board());
  workload::DesignGenOptions slow_gen;
  slow_gen.num_segments = 64;
  slow_gen.seed = 5;
  const std::string slow_design = design::design_to_string(
      workload::generate_design(big_board(), slow_gen));

  // -- deadline over TCP: identical to stdin mode ------------------------
  ProcessClient tardy;
  ASSERT_TRUE(tardy.connect(endpoint));
  {
    JsonObject request;
    request["id"] = std::string("tardy");
    request["method"] = std::string("map");
    request["board_text"] = big_board_text;
    request["design_text"] = slow_design;
    request["formulation"] = std::string("complete");
    request["deadline_ms"] = 150;
    ASSERT_TRUE(tardy.send_line(Json(std::move(request)).dump()));
  }
  EXPECT_EQ(read_response(tardy).status, ResponseStatus::kTimeout);

  // -- cancel from the same connection -----------------------------------
  ProcessClient dooming;
  ASSERT_TRUE(dooming.connect(endpoint));
  {
    JsonObject request;
    request["id"] = std::string("doomed");
    request["method"] = std::string("map");
    request["board_text"] = big_board_text;
    request["design_text"] = slow_design;
    request["formulation"] = std::string("complete");
    ASSERT_TRUE(dooming.send_line(Json(std::move(request)).dump()));
    ASSERT_TRUE(dooming.send_line(
        R"({"id":"c1","method":"cancel","target":"doomed"})"));
  }
  {
    // The cancel ack is synchronous; the cancelled terminal follows.
    const Response ack = read_response(dooming);
    EXPECT_EQ(ack.method, "cancel");
    EXPECT_TRUE(ack.found);
    EXPECT_EQ(read_response(dooming).status, ResponseStatus::kCancelled);
  }

  // -- a v1 flat client, byte-compatible: no "v" in its responses --------
  ProcessClient legacy;
  ASSERT_TRUE(legacy.connect(endpoint));
  {
    workload::DesignGenOptions gen;
    gen.num_segments = 6;
    gen.seed = 42;
    JsonObject request;
    request["id"] = std::string("v1");
    request["method"] = std::string("map");
    request["board_text"] = arch::board_to_string(small_board());
    request["design_text"] = design::design_to_string(
        workload::generate_design(small_board(), gen));
    request["threads"] = 1;
    ASSERT_TRUE(legacy.send_line(Json(std::move(request)).dump()));
  }
  {
    const auto line = legacy.read_line(kReadTimeout);
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(line->find("\"v\":"), std::string::npos)
        << "unversioned request must stay byte-compatible: " << *line;
    Response r;
    const JsonParseResult parsed = parse_json(*line);
    ASSERT_TRUE(parsed.ok);
    ASSERT_TRUE(Response::from_json(parsed.value, r));
    EXPECT_EQ(r.id, "v1");
    EXPECT_EQ(r.status, ResponseStatus::kOk) << r.error;
    EXPECT_EQ(r.v, 0);
  }

  // -- half-close batch idiom: send, shutdown(WR), then read -------------
  ProcessClient batch;
  ASSERT_TRUE(batch.connect(endpoint));
  ASSERT_TRUE(batch.send_line(R"({"id":"b1","method":"ping"})"));
  ASSERT_TRUE(batch.send_line(R"({"id":"b2","method":"ping"})"));
  batch.close_stdin();  // shutdown(SHUT_WR): the server must linger
  EXPECT_EQ(read_response(batch).id, "b1");
  EXPECT_EQ(read_response(batch).id, "b2");
  EXPECT_FALSE(batch.read_line(30.0).has_value());  // then close, not hang

  // -- shutdown ----------------------------------------------------------
  ProcessClient last;
  ASSERT_TRUE(last.connect(endpoint));
  ASSERT_TRUE(last.send_line(R"({"method":"shutdown"})"));
  EXPECT_EQ(read_response(last).method, "shutdown");
  EXPECT_EQ(server.wait_exit(30.0), 0);
}

}  // namespace
}  // namespace gmm::service
