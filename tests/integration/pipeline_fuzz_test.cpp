// Pipeline fuzzing: random boards (via the totals template) and random
// designs; every outcome must be either a proven status or a validated
// mapping.  This is the broad net behind the targeted unit tests.
#include <gtest/gtest.h>

#include "mapping/pipeline.hpp"
#include "mapping/validate.hpp"
#include "sim/memory_sim.hpp"
#include "support/rng.hpp"
#include "workload/workload_gen.hpp"

namespace gmm {
namespace {

class PipelineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PipelineFuzz, EveryOutcomeIsSoundAndSimulable) {
  support::Rng rng(12000 + GetParam());

  // Random realizable totals: banks, extra dual-ported banks, configs.
  const std::int64_t banks = rng.uniform_int(4, 60);
  const std::int64_t dual = rng.uniform_int(0, banks);
  const std::int64_t ports = banks + dual;
  const std::int64_t configs = 5 * rng.uniform_int(0, 2 * dual);
  const auto board =
      workload::board_from_totals({banks, ports, configs});
  if (!board.has_value()) GTEST_SKIP() << "unrealizable totals";

  workload::DesignGenOptions options;
  options.num_segments =
      rng.uniform_int(2, std::min<std::int64_t>(ports, 40));
  options.seed = rng.fork_seed();
  options.all_conflicting = rng.bernoulli(0.5);
  options.paper_access_model = rng.bernoulli(0.7);
  const design::Design design = workload::generate_design(*board, options);

  mapping::PipelineOptions pipeline_options;
  pipeline_options.global.mip.time_limit_seconds = 20;
  const mapping::PipelineResult r =
      mapping::map_pipeline(design, *board, pipeline_options);

  if (r.status == lp::SolveStatus::kOptimal ||
      r.status == lp::SolveStatus::kFeasible) {
    ASSERT_TRUE(r.detailed.success) << r.detailed.failure;
    const auto violations =
        mapping::validate_mapping(design, *board, r.assignment, r.detailed);
    EXPECT_TRUE(violations.empty())
        << "seed " << GetParam() << ": " << violations.front();
    // The mapping must also be simulable end to end.
    sim::TraceOptions trace_options;
    trace_options.seed = options.seed;
    trace_options.max_accesses = 5'000;
    const auto trace = sim::generate_trace(design, trace_options);
    const sim::SimReport report =
        sim::simulate(*board, design, r.detailed, trace);
    EXPECT_EQ(report.accesses, static_cast<std::int64_t>(trace.size()));
  } else {
    // Infeasibility and limits are acceptable; crashes and invalid
    // mappings are not (reaching this line means no assert fired).
    SUCCEED();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PipelineFuzz, ::testing::Range(0, 40));

}  // namespace
}  // namespace gmm
