// Stall watchdog: a running solve whose progress counter stops advancing
// is force-cancelled and terminates with status "stalled" (retryable),
// within the documented 2x-window bound.  The stall itself is injected
// with the ilp.node:stall fault point — an otherwise-quick solve wedges
// at its first node boundary and only the watchdog can free it.
#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <string>
#include <vector>

#include "service/mapping_service.hpp"
#include "support/fault.hpp"
#include "workload/workload_gen.hpp"

namespace gmm::service {
namespace {

class Collector {
 public:
  MappingService::ResponseSink sink() {
    return [this](const Response& r) {
      const std::scoped_lock lock(mutex_);
      responses_.push_back(r);
    };
  }

  [[nodiscard]] std::vector<Response> snapshot() const {
    const std::scoped_lock lock(mutex_);
    return responses_;
  }

  /// The single terminal response for a map id (fails the test if the
  /// exactly-once contract broke).
  [[nodiscard]] Response only(const std::string& id) const {
    const std::scoped_lock lock(mutex_);
    const Response* found = nullptr;
    int count = 0;
    for (const Response& r : responses_) {
      if (r.id == id && r.method == "map") {
        found = &r;
        ++count;
      }
    }
    EXPECT_EQ(count, 1) << "id " << id << " got " << count << " responses";
    return found != nullptr ? *found : Response{};
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Response> responses_;
};

arch::Board test_board() {
  const auto board = workload::board_from_totals(
      {.banks = 180, .ports = 265, .configs = 375});
  EXPECT_TRUE(board.has_value());
  return *board;
}

std::string quick_design_text() {
  return "design quick\n"
         "segment coeffs depth 64 width 8\n"
         "segment window depth 128 width 8\n"
         "conflicts all\n";
}

Request map_request(const std::string& id) {
  Request r;
  r.method = Method::kMap;
  r.id = id;
  r.map.design_text = quick_design_text();
  return r;
}

/// Every test leaves the process-global injector disarmed, pass or fail.
class WatchdogTest : public ::testing::Test {
 protected:
  void TearDown() override { support::global_faults().disarm(); }
};

TEST_F(WatchdogTest, InjectedStallTerminatesStalledWithinTwoWindows) {
  std::string error;
  ASSERT_TRUE(support::global_faults().arm("seed=1,ilp.node:stall@once", error))
      << error;

  constexpr double kWindowMs = 1000.0;
  Collector out;
  ServiceOptions options;
  options.workers = 1;
  options.watchdog_window_ms = kWindowMs;
  const auto start = std::chrono::steady_clock::now();
  {
    MappingService service({test_board()}, options, out.sink());
    service.handle(map_request("wedged"));
    service.drain();
  }
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  const Response r = out.only("wedged");
  EXPECT_EQ(r.status, ResponseStatus::kStalled);
  EXPECT_EQ(to_string(r.status), std::string("stalled"));
  EXPECT_EQ(r.stop_reason, "stalled");
  EXPECT_TRUE(r.retryable);  // a stall is a transient server-side condition
  // The acceptance bound: an infinite stall becomes a terminal response
  // within 2x the configured window (detection itself is <= 1.25x; the
  // rest is solve startup before the wedge).
  EXPECT_LT(elapsed_ms, 2.0 * kWindowMs)
      << "stalled response took " << elapsed_ms << " ms";
  EXPECT_GE(elapsed_ms, kWindowMs) << "watchdog fired before a full window";
}

TEST_F(WatchdogTest, StalledRequestCountsInStats) {
  std::string error;
  ASSERT_TRUE(support::global_faults().arm("seed=2,ilp.node:stall@once", error))
      << error;

  Collector out;
  ServiceOptions options;
  options.workers = 2;
  options.watchdog_window_ms = 500.0;
  MappingService service({test_board()}, options, out.sink());
  // stall@once wedges whichever solve reaches a node boundary first; the
  // other must complete untouched.
  service.handle(map_request("a"));
  service.handle(map_request("b"));
  service.drain();

  int stalled = 0;
  int ok = 0;
  for (const char* id : {"a", "b"}) {
    const Response r = out.only(id);
    if (r.status == ResponseStatus::kStalled) ++stalled;
    if (r.status == ResponseStatus::kOk) ++ok;
  }
  EXPECT_EQ(stalled, 1);
  EXPECT_EQ(ok, 1);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.stalled, 1);
  EXPECT_EQ(stats.accepted, 2);
  EXPECT_EQ(stats.completed, 2);
}

TEST_F(WatchdogTest, HealthySolvesSurviveTheWatchdog) {
  // No faults armed: the watchdog must never kill a solve that is making
  // progress (or one that finishes within its first window).
  Collector out;
  ServiceOptions options;
  options.workers = 2;
  options.watchdog_window_ms = 2000.0;
  MappingService service({test_board()}, options, out.sink());
  for (const char* id : {"a", "b", "c"}) {
    service.handle(map_request(id));
  }
  service.drain();
  for (const char* id : {"a", "b", "c"}) {
    EXPECT_EQ(out.only(id).status, ResponseStatus::kOk) << id;
  }
  EXPECT_EQ(service.stats().stalled, 0);
}

TEST_F(WatchdogTest, StalledResponseSerializesTaxonomy) {
  std::string error;
  ASSERT_TRUE(support::global_faults().arm("seed=3,ilp.node:stall@once", error))
      << error;

  Collector out;
  ServiceOptions options;
  options.workers = 1;
  options.watchdog_window_ms = 400.0;
  MappingService service({test_board()}, options, out.sink());
  service.handle(map_request("wedged"));
  service.drain();

  const std::string line = out.only("wedged").to_line();
  EXPECT_NE(line.find("\"status\":\"stalled\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"retryable\":true"), std::string::npos) << line;
  EXPECT_NE(line.find("\"stop_reason\":\"stalled\""), std::string::npos)
      << line;
}

}  // namespace
}  // namespace gmm::service
