// In-process MappingService behavior: admission control, deadlines,
// cancellation (queued and in-flight), drain, and error paths.  The
// subprocess/jsonl path is covered by tests/integration; randomized
// schedules by tests/stress.
#include "service/mapping_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "arch/arch_io.hpp"
#include "arch/device_catalog.hpp"
#include "design/design_io.hpp"
#include "workload/workload_gen.hpp"

namespace gmm::service {
namespace {

/// Thread-safe response collector used as the service sink.
class Collector {
 public:
  MappingService::ResponseSink sink() {
    return [this](const Response& r) {
      const std::scoped_lock lock(mutex_);
      responses_.push_back(r);
    };
  }

  [[nodiscard]] std::vector<Response> snapshot() const {
    const std::scoped_lock lock(mutex_);
    return responses_;
  }

  /// The single terminal response for a map id (fails the test if the
  /// exactly-once contract broke).
  [[nodiscard]] Response only(const std::string& id) const {
    const std::scoped_lock lock(mutex_);
    const Response* found = nullptr;
    int count = 0;
    for (const Response& r : responses_) {
      if (r.id == id && r.method == "map") {
        found = &r;
        ++count;
      }
    }
    EXPECT_EQ(count, 1) << "id " << id << " got " << count << " responses";
    return found != nullptr ? *found : Response{};
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Response> responses_;
};

arch::Board test_board() {
  // The paper's largest Table-3 board shape: big enough that the slow
  // designs below solve for a while, harmless for the quick ones.
  const auto board = workload::board_from_totals(
      {.banks = 180, .ports = 265, .configs = 375});
  EXPECT_TRUE(board.has_value());
  return *board;
}

/// A design whose COMPLETE-formulation ILP on test_board() runs for
/// seconds (the global pipeline solves even 250-segment designs in tens
/// of milliseconds — too fast to be caught in flight by a cancel or a
/// deadline, which is exactly the paper's Table-3 point about the flat
/// formulation's size).
std::string slow_design_text(std::uint64_t seed = 5) {
  const arch::Board board = test_board();
  workload::DesignGenOptions gen;
  gen.num_segments = 64;
  gen.seed = seed;
  return design::design_to_string(workload::generate_design(board, gen));
}

std::string quick_design_text() {
  return "design quick\n"
         "segment coeffs depth 64 width 8\n"
         "segment window depth 128 width 8\n"
         "conflicts all\n";
}

Request map_request(const std::string& id, std::string design_text,
                    double deadline_ms = -1.0) {
  Request r;
  r.method = Method::kMap;
  r.id = id;
  r.map.design_text = std::move(design_text);
  r.map.deadline_ms = deadline_ms;
  return r;
}

/// A request that will keep its worker busy for seconds unless stopped.
Request slow_request(const std::string& id, double deadline_ms = -1.0) {
  Request r = map_request(id, slow_design_text(), deadline_ms);
  r.map.complete = true;
  return r;
}

Request cancel_request(const std::string& target) {
  Request r;
  r.method = Method::kCancel;
  r.id = "cancel-" + target;
  r.target = target;
  return r;
}

TEST(MappingService, MapsAndPlacesEverySegment) {
  Collector out;
  MappingService service({test_board()}, {.workers = 2}, out.sink());
  service.handle(map_request("a", quick_design_text()));
  service.handle(map_request("b", quick_design_text()));
  service.drain();

  for (const char* id : {"a", "b"}) {
    const Response r = out.only(id);
    EXPECT_EQ(r.status, ResponseStatus::kOk) << r.error;
    EXPECT_EQ(r.solve_status, "optimal");
    std::set<std::string> placed;
    for (const PlacementEntry& p : r.placements) placed.insert(p.segment);
    EXPECT_EQ(placed, (std::set<std::string>{"coeffs", "window"}));
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, 2);
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.rejected, 0);
}

TEST(MappingService, InlineBoardOverridesCatalog) {
  Collector out;
  MappingService service({}, {.workers = 1}, out.sink());  // empty catalog
  Request r = map_request("inline", quick_design_text());
  r.map.board_text = arch::board_to_string(test_board());
  service.handle(r);
  service.drain();
  EXPECT_EQ(out.only("inline").status, ResponseStatus::kOk);
}

TEST(MappingService, ErrorPaths) {
  Collector out;
  MappingService service({test_board()}, {.workers = 1}, out.sink());
  Request unknown_board = map_request("ub", quick_design_text());
  unknown_board.map.board_name = "nonexistent";
  service.handle(unknown_board);

  Request bad_design = map_request("bd", "segment broken\n");
  service.handle(bad_design);

  Request empty_design = map_request("ed", "design hollow\n");
  service.handle(empty_design);

  Request bad_path = map_request("bp", "");
  bad_path.map.design_path = "/nonexistent/path/design.txt";
  service.handle(bad_path);

  Request bad_board_text = map_request("bb", quick_design_text());
  bad_board_text.map.board_text = "banktype oops\n";
  service.handle(bad_board_text);

  service.drain();
  for (const char* id : {"ub", "bd", "ed", "bp", "bb"}) {
    const Response r = out.only(id);
    EXPECT_EQ(r.status, ResponseStatus::kError) << id;
    EXPECT_FALSE(r.error.empty()) << id;
  }
}

TEST(MappingService, DuplicateActiveIdIsRejected) {
  Collector out;
  MappingService service({test_board()}, {.workers = 1}, out.sink());
  service.handle(slow_request("dup"));
  service.handle(map_request("dup", quick_design_text()));
  // Unblock the slow original so drain returns promptly.
  service.handle(cancel_request("dup"));
  service.drain();

  // The duplicate submission bounces with "rejected" — distinguishable
  // from the original's terminal response, which still arrives.
  int rejected = 0, terminal = 0;
  for (const Response& r : out.snapshot()) {
    if (r.id != "dup" || r.method != "map") continue;
    ++terminal;
    if (r.status == ResponseStatus::kRejected) ++rejected;
  }
  EXPECT_EQ(terminal, 2);
  EXPECT_EQ(rejected, 1);
  EXPECT_EQ(service.stats().rejected, 1);
}

TEST(MappingService, BoundedQueueRejectsOverflow) {
  Collector out;
  // One worker, admission bound 1: the slow request occupies the only
  // slot, so everything submitted behind it bounces with "rejected".
  MappingService service({test_board()}, {.workers = 1, .max_pending = 1},
                         out.sink());
  service.handle(slow_request("slow"));
  service.handle(map_request("r1", quick_design_text()));
  service.handle(map_request("r2", quick_design_text()));
  const Response r1 = out.only("r1");
  const Response r2 = out.only("r2");
  EXPECT_EQ(r1.status, ResponseStatus::kRejected);
  EXPECT_EQ(r2.status, ResponseStatus::kRejected);
  service.handle(cancel_request("slow"));  // shorten the tail
  service.drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, 1);
  EXPECT_EQ(stats.rejected, 2);
  // `completed` counts terminal responses of ADMITTED requests; the two
  // rejections were answered synchronously at admission.
  EXPECT_EQ(stats.completed, 1);
}

TEST(MappingService, CancelQueuedRequestNeverStarts) {
  Collector out;
  MappingService service({test_board()}, {.workers = 1}, out.sink());
  service.handle(slow_request("running"));
  service.handle(map_request("queued", quick_design_text()));
  service.handle(cancel_request("queued"));
  service.handle(cancel_request("running"));
  service.drain();

  const Response queued = out.only("queued");
  EXPECT_EQ(queued.status, ResponseStatus::kCancelled);
  EXPECT_FALSE(queued.has_result);  // never reached the solver
  EXPECT_EQ(out.only("running").status, ResponseStatus::kCancelled);
}

TEST(MappingService, CancelInFlightStopsTheSolve) {
  Collector out;
  MappingService service({test_board()}, {.workers = 1}, out.sink());
  service.handle(slow_request("victim"));
  service.handle(cancel_request("victim"));
  service.drain();

  const Response r = out.only("victim");
  EXPECT_EQ(r.status, ResponseStatus::kCancelled);
  // The ack for the cancel itself reported the target as active.
  bool acked = false;
  for (const Response& resp : out.snapshot()) {
    if (resp.method == "cancel" && resp.target == "victim") {
      acked = true;
      EXPECT_TRUE(resp.found);
    }
  }
  EXPECT_TRUE(acked);
  EXPECT_EQ(service.stats().cancelled, 1);
}

TEST(MappingService, CancelUnknownTargetAcksNotFound) {
  Collector out;
  MappingService service({test_board()}, {.workers = 1}, out.sink());
  service.handle(cancel_request("ghost"));
  const std::vector<Response> responses = out.snapshot();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, ResponseStatus::kOk);
  EXPECT_FALSE(responses[0].found);
}

TEST(MappingService, ExpiredDeadlineTimesOutWithoutSolving) {
  Collector out;
  MappingService service({test_board()}, {.workers = 1}, out.sink());
  service.handle(map_request("late", quick_design_text(), 0.0));
  service.drain();
  const Response r = out.only("late");
  EXPECT_EQ(r.status, ResponseStatus::kTimeout);
  EXPECT_FALSE(r.has_result);
  EXPECT_EQ(service.stats().timed_out, 1);
}

TEST(MappingService, DeadlineInterruptsInFlightSolve) {
  Collector out;
  MappingService service({test_board()}, {.workers = 1}, out.sink());
  // Long enough to reach the solver, far shorter than the solve.
  service.handle(slow_request("tight", 100.0));
  service.drain();
  EXPECT_EQ(out.only("tight").status, ResponseStatus::kTimeout);
}

TEST(MappingService, StatsMethodReportsRequestAndSolverCounters) {
  Collector out;
  MappingService service({test_board()}, {.workers = 2}, out.sink());

  // A fresh service reports zeros (and still answers synchronously).
  Request stats_request;
  stats_request.method = Method::kStats;
  stats_request.id = "s0";
  service.handle(stats_request);
  {
    const std::vector<Response> responses = out.snapshot();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].method, "stats");
    EXPECT_EQ(responses[0].status, ResponseStatus::kOk);
    ASSERT_TRUE(responses[0].has_stats);
    EXPECT_EQ(responses[0].stats.accepted, 0);
    EXPECT_EQ(responses[0].stats.solves, 0);
    EXPECT_EQ(responses[0].stats.nodes, 0);
  }

  // One cold solve, one exact resubmission (a cache replay, not a
  // solve), and one pre-expired deadline (never reaches the solver).
  // Drain between the cold solve and the resubmission: with 2 workers
  // the service runs back-to-back submissions concurrently, and "b"
  // would race "a"'s cache insert — this test pins the stats contract,
  // not in-flight dedup (which the service deliberately does not do).
  service.handle(map_request("a", quick_design_text()));
  service.drain();
  service.handle(map_request("b", quick_design_text()));
  service.handle(map_request("late", quick_design_text(), 0.0));
  service.drain();
  EXPECT_EQ(out.only("a").status, ResponseStatus::kOk);
  EXPECT_EQ(out.only("b").status, ResponseStatus::kOk);
  EXPECT_TRUE(out.only("b").cached);
  EXPECT_EQ(out.only("late").status, ResponseStatus::kTimeout);

  stats_request.id = "s1";
  service.handle(stats_request);
  const std::vector<Response> responses = out.snapshot();
  const Response& stats = responses.back();
  EXPECT_EQ(stats.id, "s1");
  ASSERT_TRUE(stats.has_stats);
  EXPECT_EQ(stats.stats.accepted, 3);
  EXPECT_EQ(stats.stats.completed, 3);
  EXPECT_EQ(stats.stats.timed_out, 1);
  // Solver totals count only the requests that actually solved: the
  // replayed resubmission never touches the solver counters.
  EXPECT_EQ(stats.stats.solves, 1);
  EXPECT_GE(stats.stats.nodes, 1);
  EXPECT_GT(stats.stats.lp_iterations, 0);
  // Every admitted map request lands in exactly one cache bucket.
  EXPECT_EQ(stats.stats.cache.hits, 1);
  EXPECT_EQ(stats.stats.cache.misses, 1);
  EXPECT_EQ(stats.stats.cache.bypasses, 1);  // the pre-expired deadline
  EXPECT_LE(stats.stats.basis.loaded + stats.stats.basis.evicted,
            stats.stats.basis.stored);
  // Matches the programmatic accessor the serve loop logs from.
  const ServiceStats direct = service.stats();
  EXPECT_EQ(direct.solves, stats.stats.solves);
  EXPECT_EQ(direct.nodes, stats.stats.nodes);
  EXPECT_EQ(direct.lp_iterations, stats.stats.lp_iterations);
}

TEST(MappingService, ShardedFormulationMapsMultiDeviceBoards) {
  // A dual-device board via inline board_text: the sharded formulation
  // must succeed, report its shard count, and bump the sharded solver
  // counters; the same request against the single-device catalog board
  // degenerates to the pipeline (shards == 1, stitch_cost == 0).
  const arch::Board dual =
      arch::split_across_devices(arch::single_fpga_board("XCV300", 4), 2);
  Collector out;
  MappingService service({test_board()}, {.workers = 1}, out.sink());

  Request sharded = map_request("sh", quick_design_text());
  sharded.map.sharded = true;
  sharded.map.board_text = arch::board_to_string(dual);
  service.handle(sharded);

  Request degenerate = map_request("deg", quick_design_text());
  degenerate.map.sharded = true;
  service.handle(degenerate);
  service.drain();

  const Response multi = out.only("sh");
  EXPECT_EQ(multi.status, ResponseStatus::kOk);
  ASSERT_TRUE(multi.has_result);
  EXPECT_GE(multi.shards, 1);
  EXPECT_FALSE(multi.placements.empty());

  const Response single = out.only("deg");
  EXPECT_EQ(single.status, ResponseStatus::kOk);
  ASSERT_TRUE(single.has_result);
  EXPECT_EQ(single.shards, 1);
  EXPECT_DOUBLE_EQ(single.stitch_cost, 0.0);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sharded_requests, 2);
  EXPECT_GE(stats.shard_solves, 2);

  // The degenerate sharded solve costs the same objective as global.
  Request global = map_request("glob", quick_design_text());
  service.handle(global);
  service.drain();
  EXPECT_DOUBLE_EQ(out.only("glob").objective, single.objective);
}

TEST(MappingService, PortfolioFormulationRacesAndReportsWinner) {
  Collector out;
  MappingService service({test_board()}, {.workers = 1}, out.sink());
  Request race = map_request("race", quick_design_text());
  race.map.portfolio = true;
  service.handle(race);
  service.drain();

  const Response r = out.only("race");
  ASSERT_EQ(r.status, ResponseStatus::kOk) << r.error;
  ASSERT_TRUE(r.has_result);
  EXPECT_EQ(r.solve_status, "optimal");
  EXPECT_EQ(r.lanes, 3);  // the service default when the knob is unset
  EXPECT_FALSE(r.winner.empty());
  EXPECT_FALSE(r.placements.empty());

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.portfolio.requests, 1);
  EXPECT_EQ(stats.portfolio.lanes_launched, 3);
  std::int64_t winner_total = 0;
  for (const auto& [name, count] : stats.portfolio.winners) {
    winner_total += count;
  }
  EXPECT_EQ(winner_total, 1);
  EXPECT_EQ(stats.portfolio.winners.count(r.winner), 1u);
  EXPECT_EQ(stats.cache.hits + stats.cache.misses + stats.cache.bypasses,
            stats.accepted);
}

TEST(MappingService, PortfolioLanesKnobSetsTheLaneCount) {
  Collector out;
  MappingService service({test_board()}, {.workers = 1}, out.sink());
  Request race = map_request("two", quick_design_text());
  race.map.portfolio = true;
  race.map.knobs.lanes = 2;
  service.handle(race);
  service.drain();

  const Response r = out.only("two");
  ASSERT_EQ(r.status, ResponseStatus::kOk) << r.error;
  EXPECT_EQ(r.lanes, 2);
  EXPECT_EQ(service.stats().portfolio.lanes_launched, 2);
}

TEST(MappingService, PortfolioRepeatHitsTheCacheUnderTheWinnerKey) {
  // The winner's proof is cached under the winner's FORMULATION key;
  // a repeat portfolio request probes both the global and complete
  // fingerprints, so it must replay regardless of which lane won.
  Collector out;
  MappingService service({test_board()}, {.workers = 1}, out.sink());
  Request cold = map_request("cold", quick_design_text());
  cold.map.portfolio = true;
  service.handle(cold);
  Request warm = map_request("warm", quick_design_text());
  warm.map.portfolio = true;
  service.handle(warm);
  service.drain();

  const Response first = out.only("cold");
  ASSERT_EQ(first.status, ResponseStatus::kOk) << first.error;
  EXPECT_FALSE(first.cached);
  const Response second = out.only("warm");
  ASSERT_EQ(second.status, ResponseStatus::kOk) << second.error;
  EXPECT_TRUE(second.cached);
  EXPECT_DOUBLE_EQ(second.objective, first.objective);

  const ServiceStats stats = service.stats();
  // Portfolio counters track RACES, and the cached replay never raced:
  // only the cold request launched lanes.
  EXPECT_EQ(stats.portfolio.requests, 1);
  EXPECT_EQ(stats.portfolio.lanes_launched, 3);
  EXPECT_EQ(stats.cache.hits, 1);
  EXPECT_EQ(stats.cache.insertions, 1);
  EXPECT_EQ(stats.cache.hits + stats.cache.misses + stats.cache.bypasses,
            stats.accepted);
}

TEST(MappingService, PingAndInvalidRespondSynchronously) {
  Collector out;
  MappingService service({test_board()}, {.workers = 1}, out.sink());
  Request ping;
  ping.method = Method::kPing;
  ping.id = "p1";
  service.handle(ping);
  Request invalid;
  invalid.method = Method::kInvalid;
  invalid.id = "junk";
  invalid.error = "unparseable";
  service.handle(invalid);
  const std::vector<Response> responses = out.snapshot();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].method, "ping");
  EXPECT_EQ(responses[0].status, ResponseStatus::kOk);
  EXPECT_EQ(responses[1].status, ResponseStatus::kError);
  EXPECT_EQ(responses[1].error, "unparseable");
}

}  // namespace
}  // namespace gmm::service
