#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

namespace gmm::service {
namespace {

TEST(Protocol, ParsesMapRequest) {
  const Request r = parse_request_line(
      R"({"id":"r1","method":"map","design_text":"design d\n","board":"xcv",)"
      R"("threads":4,"deadline_ms":2500})");
  ASSERT_EQ(r.method, Method::kMap);
  EXPECT_EQ(r.id, "r1");
  EXPECT_EQ(r.version, 0);  // no explicit "v": legacy, response omits it
  EXPECT_EQ(r.map.board_name, "xcv");
  EXPECT_EQ(r.map.design_text, "design d\n");
  EXPECT_EQ(r.map.knobs.threads, 4);
  EXPECT_DOUBLE_EQ(r.map.deadline_ms, 2500.0);
  EXPECT_TRUE(r.reject_reason.empty());
}

TEST(Protocol, MapDefaults) {
  const Request r = parse_request_line(
      R"({"id":"r","method":"map","design_path":"/tmp/x.txt"})");
  ASSERT_EQ(r.method, Method::kMap);
  EXPECT_EQ(r.map.knobs.threads, 1);
  EXPECT_LT(r.map.knobs.gap, 0.0);             // unset
  EXPECT_LT(r.map.knobs.max_nodes, 0);         // unset
  EXPECT_LT(r.map.knobs.time_limit_ms, 0.0);   // unset
  EXPECT_LT(r.map.deadline_ms, 0.0);           // no deadline
  EXPECT_TRUE(r.map.board_name.empty());
}

TEST(Protocol, RejectsBadMapRequests) {
  // Structural failures: missing id, missing design, both design forms,
  // bad deadline.  These are kInvalid (wire status "error").
  for (const char* line : {
           R"({"method":"map","design_text":"d"})",
           R"({"id":"r","method":"map"})",
           R"({"id":"r","method":"map","design_text":"d","design_path":"p"})",
           R"({"id":"r","method":"map","design_text":"d","deadline_ms":-5})",
       }) {
    const Request r = parse_request_line(line);
    EXPECT_EQ(r.method, Method::kInvalid) << line;
    EXPECT_FALSE(r.error.empty()) << line;
  }
}

TEST(Protocol, OutOfRangeKnobsRejectNotError) {
  // Structurally valid requests whose solver knobs are out of range stay
  // kMap with a reject_reason — the service answers status "rejected",
  // never solves under a contract the client didn't ask for.
  for (const char* line : {
           R"({"id":"r","method":"map","design_text":"d","threads":-1})",
           R"({"id":"r","method":"map","design_text":"d","threads":"four"})",
           R"({"v":2,"id":"r","method":"map","design_text":"d",)"
           R"("options":{"gap":1.5}})",
           R"({"v":2,"id":"r","method":"map","design_text":"d",)"
           R"("options":{"max_nodes":0}})",
           R"({"v":2,"id":"r","method":"map","design_text":"d",)"
           R"("options":{"time_limit_ms":-3}})",
           R"({"v":2,"id":"r","method":"map","design_text":"d",)"
           R"("options":{"max_stored_bases":-1}})",
           // Unknown keys INSIDE options reject: a silently dropped knob
           // would change the quality contract.
           R"({"v":2,"id":"r","method":"map","design_text":"d",)"
           R"("options":{"gapp":0.1}})",
           R"({"v":2,"id":"r","method":"map","design_text":"d",)"
           R"("options":"fast"})",
       }) {
    const Request r = parse_request_line(line);
    EXPECT_EQ(r.method, Method::kMap) << line;
    EXPECT_FALSE(r.reject_reason.empty()) << line;
    EXPECT_EQ(r.id, "r") << line;
  }
}

TEST(Protocol, ParsesV2Options) {
  const Request r = parse_request_line(
      R"({"v":2,"id":"r1","method":"map","design_text":"d","options":)"
      R"({"gap":0.05,"max_nodes":1000,"time_limit_ms":2500,"threads":3,)"
      R"("max_stored_bases":64}})");
  ASSERT_EQ(r.method, Method::kMap);
  EXPECT_EQ(r.version, 2);
  EXPECT_TRUE(r.reject_reason.empty()) << r.reject_reason;
  EXPECT_DOUBLE_EQ(r.map.knobs.gap, 0.05);
  EXPECT_EQ(r.map.knobs.max_nodes, 1000);
  EXPECT_DOUBLE_EQ(r.map.knobs.time_limit_ms, 2500.0);
  EXPECT_EQ(r.map.knobs.threads, 3);
  EXPECT_EQ(r.map.knobs.max_stored_bases, 64);
}

TEST(Protocol, OptionsWinOverLegacyThreads) {
  const Request r = parse_request_line(
      R"({"v":2,"id":"r1","method":"map","design_text":"d","threads":7,)"
      R"("options":{"threads":2}})");
  ASSERT_EQ(r.method, Method::kMap);
  EXPECT_EQ(r.map.knobs.threads, 2);
}

TEST(Protocol, VersionValidation) {
  EXPECT_EQ(parse_request_line(R"({"v":1,"method":"ping"})").version, 1);
  EXPECT_EQ(parse_request_line(R"({"v":2,"method":"ping"})").version, 2);
  // Unknown or malformed versions are structural errors, not silently
  // reinterpreted requests.
  EXPECT_EQ(parse_request_line(R"({"v":3,"method":"ping"})").method,
            Method::kInvalid);
  EXPECT_EQ(parse_request_line(R"({"v":0,"method":"ping"})").method,
            Method::kInvalid);
  EXPECT_EQ(parse_request_line(R"({"v":"two","method":"ping"})").method,
            Method::kInvalid);
}

TEST(Protocol, UnknownTopLevelFieldsIgnoredButCounted) {
  const Request r = parse_request_line(
      R"({"id":"r1","method":"map","design_text":"d","thraeds":4,)"
      R"("color":"blue"})");
  ASSERT_EQ(r.method, Method::kMap);  // still a valid request
  EXPECT_EQ(r.unknown_fields, 2);
  EXPECT_EQ(r.map.knobs.threads, 1);  // the typo did NOT set threads

  const Request clean = parse_request_line(
      R"({"id":"r2","method":"map","design_text":"d","threads":4})");
  EXPECT_EQ(clean.unknown_fields, 0);
}

TEST(Protocol, ResponseEchoesExplicitVersionOnly) {
  Response r;
  r.id = "r1";
  r.method = "ping";
  r.status = ResponseStatus::kOk;
  // Unversioned request (version 0): the wire stays byte-identical to
  // the v1 protocol — no "v" key at all.
  EXPECT_EQ(r.to_line().find("\"v\""), std::string::npos);
  r.v = 2;
  EXPECT_NE(r.to_line().find("\"v\":2"), std::string::npos);

  const JsonParseResult parsed = parse_json(r.to_line());
  ASSERT_TRUE(parsed.ok);
  Response back;
  ASSERT_TRUE(Response::from_json(parsed.value, back));
  EXPECT_EQ(back.v, 2);
}

TEST(Protocol, ErrorKeepsIdForCorrelation) {
  const Request r = parse_request_line(R"({"id":"r9","method":"frobnicate"})");
  EXPECT_EQ(r.method, Method::kInvalid);
  EXPECT_EQ(r.id, "r9");
}

TEST(Protocol, ParsesControlMethods) {
  const Request cancel =
      parse_request_line(R"({"id":"c1","method":"cancel","target":"r1"})");
  ASSERT_EQ(cancel.method, Method::kCancel);
  EXPECT_EQ(cancel.target, "r1");
  EXPECT_EQ(parse_request_line(R"({"method":"cancel"})").method,
            Method::kInvalid);  // no target
  EXPECT_EQ(parse_request_line(R"({"method":"ping"})").method, Method::kPing);
  EXPECT_EQ(parse_request_line(R"({"method":"shutdown"})").method,
            Method::kShutdown);
  EXPECT_EQ(parse_request_line("not json").method, Method::kInvalid);
  EXPECT_EQ(parse_request_line("[1,2]").method, Method::kInvalid);
  EXPECT_EQ(parse_request_line("{}").method, Method::kInvalid);
}

TEST(Protocol, ParsesStatsRequest) {
  const Request stats =
      parse_request_line(R"({"id":"s1","method":"stats"})");
  ASSERT_EQ(stats.method, Method::kStats);
  EXPECT_EQ(stats.id, "s1");
  // Like ping, the id is optional (the response is synchronous anyway).
  EXPECT_EQ(parse_request_line(R"({"method":"stats"})").method,
            Method::kStats);
}

TEST(Protocol, ParsesShardedFormulation) {
  const Request r = parse_request_line(
      R"({"id":"r1","method":"map","design_text":"d","formulation":"sharded"})");
  ASSERT_EQ(r.method, Method::kMap);
  EXPECT_TRUE(r.map.sharded);
  EXPECT_FALSE(r.map.complete);

  const Request global = parse_request_line(
      R"({"id":"r2","method":"map","design_text":"d"})");
  ASSERT_EQ(global.method, Method::kMap);
  EXPECT_FALSE(global.map.sharded);

  const Request bad = parse_request_line(
      R"({"id":"r3","method":"map","design_text":"d","formulation":"mystery"})");
  EXPECT_EQ(bad.method, Method::kInvalid);
  EXPECT_NE(bad.error.find("sharded"), std::string::npos) << bad.error;
}

TEST(Protocol, ParsesPortfolioFormulation) {
  const Request r = parse_request_line(
      R"({"id":"p1","method":"map","design_text":"d",)"
      R"("formulation":"portfolio","options":{"lanes":2}})");
  ASSERT_EQ(r.method, Method::kMap);
  EXPECT_TRUE(r.map.portfolio);
  EXPECT_FALSE(r.map.sharded);
  EXPECT_FALSE(r.map.complete);
  EXPECT_EQ(r.map.knobs.lanes, 2);

  // The unknown-formulation error names every accepted value.
  const Request bad = parse_request_line(
      R"({"id":"p2","method":"map","design_text":"d","formulation":"x"})");
  EXPECT_EQ(bad.method, Method::kInvalid);
  EXPECT_NE(bad.error.find("portfolio"), std::string::npos) << bad.error;
}

TEST(Protocol, PortfolioFieldsRoundTripOnMapResponses) {
  Response r;
  r.id = "p1";
  r.method = "map";
  r.status = ResponseStatus::kOk;
  r.has_result = true;
  r.solve_status = "optimal";
  r.lanes = 3;
  r.winner = "global-nocuts";
  r.lanes_cancelled = 2;
  const JsonParseResult parsed = parse_json(r.to_line());
  ASSERT_TRUE(parsed.ok);
  Response back;
  ASSERT_TRUE(Response::from_json(parsed.value, back));
  EXPECT_EQ(back.lanes, 3);
  EXPECT_EQ(back.winner, "global-nocuts");
  EXPECT_EQ(back.lanes_cancelled, 2);

  // Non-portfolio responses stay clean of the fields.
  Response plain;
  plain.id = "p2";
  plain.method = "map";
  plain.status = ResponseStatus::kOk;
  plain.has_result = true;
  plain.solve_status = "optimal";
  const std::string text = plain.to_line();
  EXPECT_EQ(text.find("winner"), std::string::npos) << text;
  EXPECT_EQ(text.find("lanes"), std::string::npos) << text;
}

TEST(Protocol, ShardFieldsRoundTripOnMapResponses) {
  Response r;
  r.id = "m1";
  r.method = "map";
  r.status = ResponseStatus::kOk;
  r.has_result = true;
  r.solve_status = "optimal";
  r.objective = 1234.0;
  r.shards = 3;
  r.stitch_cost = 98765.0;

  const JsonParseResult parsed = parse_json(r.to_line());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  Response back;
  ASSERT_TRUE(Response::from_json(parsed.value, back));
  ASSERT_TRUE(back.has_result);
  EXPECT_EQ(back.shards, 3);
  EXPECT_DOUBLE_EQ(back.stitch_cost, 98765.0);

  // Non-sharded responses keep the legacy wire shape: no shard keys.
  Response plain = r;
  plain.shards = 0;
  plain.stitch_cost = 0.0;
  EXPECT_EQ(plain.to_line().find("shards"), std::string::npos);
  EXPECT_EQ(plain.to_line().find("stitch_cost"), std::string::npos);
}

TEST(Protocol, StatsResponseRoundTrips) {
  Response r;
  r.id = "s1";
  r.method = "stats";
  r.status = ResponseStatus::kOk;
  r.has_stats = true;
  r.stats.sharded_requests = 4;
  r.stats.shard_solves = 17;
  r.stats.accepted = 9;
  r.stats.rejected = 2;
  r.stats.completed = 8;
  r.stats.cancelled = 1;
  r.stats.timed_out = 3;
  r.stats.solves = 7;
  r.stats.nodes = 1234;
  r.stats.lp_iterations = 56789;
  r.stats.basis.stored = 400;
  r.stats.basis.loaded = 350;
  r.stats.basis.evicted = 25;
  r.stats.basis.cold_pops = 60;
  r.stats.basis.warm_pop_pivots = 700;
  r.stats.basis.cold_pop_pivots = 5000;

  const JsonParseResult parsed = parse_json(r.to_line());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  Response back;
  ASSERT_TRUE(Response::from_json(parsed.value, back));
  EXPECT_EQ(back.method, "stats");
  EXPECT_EQ(back.status, ResponseStatus::kOk);
  ASSERT_TRUE(back.has_stats);
  EXPECT_FALSE(back.has_result);
  EXPECT_EQ(back.stats.accepted, 9);
  EXPECT_EQ(back.stats.rejected, 2);
  EXPECT_EQ(back.stats.completed, 8);
  EXPECT_EQ(back.stats.cancelled, 1);
  EXPECT_EQ(back.stats.timed_out, 3);
  EXPECT_EQ(back.stats.solves, 7);
  EXPECT_EQ(back.stats.nodes, 1234);
  EXPECT_EQ(back.stats.lp_iterations, 56789);
  EXPECT_EQ(back.stats.sharded_requests, 4);
  EXPECT_EQ(back.stats.shard_solves, 17);
  EXPECT_EQ(back.stats.basis.stored, 400);
  EXPECT_EQ(back.stats.basis.loaded, 350);
  EXPECT_EQ(back.stats.basis.evicted, 25);
  EXPECT_EQ(back.stats.basis.cold_pops, 60);
  EXPECT_EQ(back.stats.basis.warm_pop_pivots, 700);
  EXPECT_EQ(back.stats.basis.cold_pop_pivots, 5000);
  // The wire also carries the derived hit rate for humans/dashboards.
  EXPECT_NE(r.to_line().find("\"basis_hit_rate\""), std::string::npos);
  // Pipe-mode stats never grew a transport section: the object appears
  // only once a socket front end recorded a connection.
  EXPECT_EQ(r.to_line().find("\"transport\""), std::string::npos);
}

TEST(Protocol, TransportStatsRoundTrip) {
  Response r;
  r.id = "s1";
  r.method = "stats";
  r.status = ResponseStatus::kOk;
  r.has_stats = true;
  r.stats.unknown_field_requests = 5;
  r.stats.transport.connections_opened = 9;
  r.stats.transport.connections_closed = 4;
  r.stats.transport.requests = 120;
  r.stats.transport.bytes_received = 48213;
  r.stats.transport.bytes_sent = 391245;
  r.stats.transport.responses_dropped = 2;
  r.stats.transport.shed = 7;

  const JsonParseResult parsed = parse_json(r.to_line());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  Response back;
  ASSERT_TRUE(Response::from_json(parsed.value, back));
  ASSERT_TRUE(back.has_stats);
  EXPECT_EQ(back.stats.unknown_field_requests, 5);
  EXPECT_EQ(back.stats.transport.connections_opened, 9);
  EXPECT_EQ(back.stats.transport.connections_closed, 4);
  EXPECT_EQ(back.stats.transport.requests, 120);
  EXPECT_EQ(back.stats.transport.bytes_received, 48213);
  EXPECT_EQ(back.stats.transport.bytes_sent, 391245);
  EXPECT_EQ(back.stats.transport.responses_dropped, 2);
  EXPECT_EQ(back.stats.transport.shed, 7);
}

TEST(Protocol, ResponseRoundTrips) {
  Response r;
  r.id = "r1";
  r.method = "map";
  r.status = ResponseStatus::kTimeout;
  r.has_result = true;
  r.solve_status = "feasible";
  r.stop_reason = "time-limit";
  r.objective = 1234.0;
  r.nodes = 77;
  r.seconds = 0.125;
  r.retries = 1;
  PlacementEntry p;
  p.segment = "coeffs";
  p.type = "blockram";
  p.instance = 3;
  p.first_port = 1;
  p.ports = 1;
  p.config = "256x16";
  p.offset_bits = 1024;
  p.block_bits = 2048;
  p.kind = "full";
  r.placements.push_back(p);

  const JsonParseResult parsed = parse_json(r.to_line());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  Response back;
  ASSERT_TRUE(Response::from_json(parsed.value, back));
  EXPECT_EQ(back.id, r.id);
  EXPECT_EQ(back.status, ResponseStatus::kTimeout);
  EXPECT_EQ(back.solve_status, "feasible");
  EXPECT_EQ(back.stop_reason, "time-limit");
  EXPECT_DOUBLE_EQ(back.objective, 1234.0);
  EXPECT_EQ(back.nodes, 77);
  EXPECT_EQ(back.retries, 1);
  ASSERT_EQ(back.placements.size(), 1u);
  EXPECT_EQ(back.placements[0].segment, "coeffs");
  EXPECT_EQ(back.placements[0].config, "256x16");
  EXPECT_EQ(back.placements[0].block_bits, 2048);
  EXPECT_EQ(back.placements[0].kind, "full");
}

TEST(Protocol, CancelAckRoundTrips) {
  Response ack;
  ack.id = "c1";
  ack.method = "cancel";
  ack.status = ResponseStatus::kOk;
  ack.target = "r1";
  ack.found = true;
  const JsonParseResult parsed = parse_json(ack.to_line());
  ASSERT_TRUE(parsed.ok);
  Response back;
  ASSERT_TRUE(Response::from_json(parsed.value, back));
  EXPECT_EQ(back.target, "r1");
  EXPECT_TRUE(back.found);
  EXPECT_FALSE(back.has_result);
}

TEST(Protocol, FromJsonRejectsGarbage) {
  Response out;
  EXPECT_FALSE(Response::from_json(Json(1.0), out));
  const JsonParseResult no_status = parse_json(R"({"id":"x"})");
  ASSERT_TRUE(no_status.ok);
  EXPECT_FALSE(Response::from_json(no_status.value, out));
  const JsonParseResult bad_status =
      parse_json(R"({"id":"x","status":"sideways"})");
  ASSERT_TRUE(bad_status.ok);
  EXPECT_FALSE(Response::from_json(bad_status.value, out));
}

}  // namespace
}  // namespace gmm::service
