// Solution-cache correctness wall.
//
// Property tests (300 seeds): the request fingerprint is invariant under
// structure reordering, renaming, and bank-type reordering — and differs
// whenever ANY objective-relevant field differs (structure shape,
// traffic, conflicts, bank parameters, formulation, gap).  The
// traffic-excluded STRUCTURAL fingerprint is additionally invariant
// under traffic mutation, which is what near-miss detection keys on.
//
// Service tests: an exact resubmission (even permuted and renamed)
// replays from the cache with "cached" set and an identical objective; a
// traffic-only mutation takes the incremental near-miss path; no_cache
// bypasses; and the hit/miss/bypass accounting always sums to the
// accepted-request count.
#include "service/solution_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "arch/board.hpp"
#include "design/design.hpp"
#include "design/design_io.hpp"
#include "service/mapping_service.hpp"
#include "support/rng.hpp"
#include "workload/workload_gen.hpp"

namespace gmm::service {
namespace {

// ---- random problem generators --------------------------------------------

design::Design random_design(support::Rng& rng) {
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(3, 10));
  design::Design out("d");
  for (std::size_t i = 0; i < n; ++i) {
    design::DataStructure ds;
    ds.name = "s" + std::to_string(i);
    ds.depth = rng.uniform_int(8, 256);
    ds.width = rng.uniform_int(1, 32);
    // 0 = "unknown" (cost models fall back to depth); mixing both forms
    // exercises the effective_* normalization in the fingerprint.
    ds.reads = rng.bernoulli(0.5) ? rng.uniform_int(1, 4096) : 0;
    ds.writes = rng.bernoulli(0.5) ? rng.uniform_int(1, 4096) : 0;
    out.add(ds);
  }
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (rng.bernoulli(0.4)) out.add_conflict(a, b);
    }
  }
  return out;
}

arch::Board random_board(support::Rng& rng) {
  arch::Board out("b");
  const int types = static_cast<int>(rng.uniform_int(2, 4));
  for (int t = 0; t < types; ++t) {
    arch::BankType type;
    type.name = "t" + std::to_string(t);
    type.instances = rng.uniform_int(2, 8);
    type.ports = rng.uniform_int(1, 2);
    type.read_latency = rng.uniform_int(1, 3);
    type.write_latency = rng.uniform_int(1, 3);
    type.pins_traversed = rng.uniform_int(0, 4);
    // Constant-capacity power-of-two configs (BankType::validate).
    const int log_capacity = static_cast<int>(rng.uniform_int(12, 15));
    const int configs = static_cast<int>(rng.uniform_int(1, 3));
    for (int c = 0; c < configs; ++c) {
      const int log_depth = log_capacity - 2 - c;
      type.configs.push_back(
          {.depth = std::int64_t{1} << log_depth,
           .width = std::int64_t{1} << (log_capacity - log_depth)});
    }
    out.add_bank_type(type);
  }
  return out;
}

/// Rebuild `design` with structures in `order` and fresh names; conflict
/// pairs are remapped through the permutation.
design::Design permute_design(const design::Design& design,
                              const std::vector<std::size_t>& order) {
  std::vector<std::size_t> position(design.size());
  for (std::size_t j = 0; j < order.size(); ++j) position[order[j]] = j;
  design::Design out("renamed");
  for (std::size_t j = 0; j < order.size(); ++j) {
    design::DataStructure ds = design.at(order[j]);
    ds.name = "x" + std::to_string(j);
    out.add(ds);
  }
  for (const auto& [a, b] : design.conflict_pairs()) {
    out.add_conflict(position[a], position[b]);
  }
  return out;
}

arch::Board permute_board(const arch::Board& board,
                          const std::vector<std::size_t>& order) {
  arch::Board out(board.name());
  for (const std::size_t t : order) {
    arch::BankType type = board.type(t);
    type.name = "r" + std::to_string(t);
    out.add_bank_type(type);
  }
  return out;
}

RequestFingerprint fp_of(const design::Design& design,
                         const arch::Board& board,
                         double gap = 1e-4) {
  return fingerprint_request(design, board, CachedFormulation::kGlobal, gap);
}

// ---- fingerprint properties -----------------------------------------------

TEST(SolutionCacheFingerprint, InvariantUnderReorderingAndRenaming) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    support::Rng rng(seed);
    const design::Design design = random_design(rng);
    const arch::Board board = random_board(rng);

    std::vector<std::size_t> ds_order(design.size());
    std::iota(ds_order.begin(), ds_order.end(), std::size_t{0});
    rng.shuffle(ds_order);
    std::vector<std::size_t> type_order(board.num_types());
    std::iota(type_order.begin(), type_order.end(), std::size_t{0});
    rng.shuffle(type_order);

    const RequestFingerprint a = fp_of(design, board);
    const RequestFingerprint b =
        fp_of(permute_design(design, ds_order), permute_board(board, type_order));

    ASSERT_EQ(a.full, b.full) << "seed " << seed;
    ASSERT_EQ(a.structural, b.structural) << "seed " << seed;
    // The canonical-rank views must agree too — that is what makes a
    // cached entry replayable onto any permutation of the same request.
    ASSERT_EQ(a.param_hash_by_rank, b.param_hash_by_rank) << "seed " << seed;
  }
}

TEST(SolutionCacheFingerprint, SeparatesEveryObjectiveRelevantField) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    support::Rng rng(seed + 1'000'000);
    const design::Design design = random_design(rng);
    const arch::Board board = random_board(rng);
    const RequestFingerprint base = fp_of(design, board);

    const auto expect_differs = [&](const design::Design& d,
                                    const arch::Board& b, const char* what) {
      const RequestFingerprint mutated = fp_of(d, b);
      ASSERT_NE(base.full, mutated.full) << what << " seed " << seed;
    };

    const std::size_t victim = rng.index(design.size());
    {  // depth: full AND structural change
      design::Design d("d");
      for (std::size_t i = 0; i < design.size(); ++i) {
        design::DataStructure ds = design.at(i);
        if (i == victim) ds.depth += 1;
        d.add(ds);
      }
      for (const auto& [a, b] : design.conflict_pairs()) d.add_conflict(a, b);
      const RequestFingerprint mutated = fp_of(d, board);
      ASSERT_NE(base.full, mutated.full) << "depth seed " << seed;
      ASSERT_NE(base.structural, mutated.structural) << "depth seed " << seed;
    }
    {  // traffic: full changes, STRUCTURAL stays (the near-miss property)
      design::Design d("d");
      for (std::size_t i = 0; i < design.size(); ++i) {
        design::DataStructure ds = design.at(i);
        if (i == victim) ds.reads = ds.effective_reads() + 7;
        d.add(ds);
      }
      for (const auto& [a, b] : design.conflict_pairs()) d.add_conflict(a, b);
      const RequestFingerprint mutated = fp_of(d, board);
      ASSERT_NE(base.full, mutated.full) << "reads seed " << seed;
      ASSERT_EQ(base.structural, mutated.structural) << "reads seed " << seed;
    }
    if (design.size() >= 2) {  // conflict edge flip
      design::Design d("d");
      for (std::size_t i = 0; i < design.size(); ++i) d.add(design.at(i));
      const std::size_t a = 0;
      const std::size_t b = 1;
      const bool had = design.conflicts(a, b);
      for (const auto& [x, y] : design.conflict_pairs()) {
        if (had && x == a && y == b) continue;
        d.add_conflict(x, y);
      }
      if (!had) d.add_conflict(a, b);
      expect_differs(d, board, "conflict flip");
    }
    {  // bank-type parameter changes
      const std::size_t t = rng.index(board.num_types());
      for (const int field : {0, 1, 2, 3, 4}) {
        arch::Board b("b");
        for (std::size_t k = 0; k < board.num_types(); ++k) {
          arch::BankType type = board.type(k);
          if (k == t) {
            switch (field) {
              case 0: type.instances += 1; break;
              case 1: type.ports += 1; break;
              case 2: type.read_latency += 1; break;
              case 3: type.write_latency += 1; break;
              case 4: type.pins_traversed += 1; break;
            }
          }
          b.add_bank_type(type);
        }
        expect_differs(design, b, "bank field");
      }
    }
    {  // formulation and gap are part of the contract
      const RequestFingerprint complete = fingerprint_request(
          design, board, CachedFormulation::kComplete, 1e-4);
      ASSERT_NE(base.full, complete.full) << "formulation seed " << seed;
      const RequestFingerprint loose = fp_of(design, board, 0.05);
      ASSERT_NE(base.full, loose.full) << "gap seed " << seed;
    }
  }
}

// ---- LRU store -------------------------------------------------------------

CacheEntry entry_with_key(std::uint64_t key, std::uint64_t structural) {
  CacheEntry e;
  e.key = {key, key ^ 0xabcdULL};
  e.structural = {structural, structural ^ 0x1234ULL};
  e.num_structures = 1;
  e.num_types = 1;
  e.type_of_by_rank = {0};
  e.objective = static_cast<double>(key);
  return e;
}

TEST(SolutionCacheStore, LruEvictsLeastRecentlyUsed) {
  SolutionCache cache(2);
  cache.insert(entry_with_key(1, 101));
  cache.insert(entry_with_key(2, 102));
  // Touch 1 so 2 becomes the LRU victim.
  ASSERT_TRUE(cache.find({1, 1 ^ 0xabcdULL}).has_value());
  cache.insert(entry_with_key(3, 103));

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.insertions(), 3);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_TRUE(cache.find({1, 1 ^ 0xabcdULL}).has_value());
  EXPECT_FALSE(cache.find({2, 2 ^ 0xabcdULL}).has_value());
  EXPECT_TRUE(cache.find({3, 3 ^ 0xabcdULL}).has_value());
}

TEST(SolutionCacheStore, StructuralIndexAndErase) {
  SolutionCache cache(4);
  cache.insert(entry_with_key(1, 500));
  const auto near = cache.find_structural({500, 500 ^ 0x1234ULL});
  ASSERT_TRUE(near.has_value());
  EXPECT_EQ(near->key, (Fingerprint{1, 1 ^ 0xabcdULL}));

  cache.erase({1, 1 ^ 0xabcdULL});
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.find({1, 1 ^ 0xabcdULL}).has_value());
  EXPECT_FALSE(cache.find_structural({500, 500 ^ 0x1234ULL}).has_value());
}

TEST(SolutionCacheStore, EraseRepointsStructuralIndexToSurvivor) {
  // Two entries share a structural fingerprint (same conflict graph and
  // shapes, different traffic).  The LAST insert owns the structural
  // slot; erasing the owner (poisoning path) must repoint the slot at
  // the survivor, not orphan it — a near-miss lookup afterwards still
  // has a usable prior mapping in the cache.
  SolutionCache cache(4);
  cache.insert(entry_with_key(1, 500));
  cache.insert(entry_with_key(2, 500));
  auto near = cache.find_structural({500, 500 ^ 0x1234ULL});
  ASSERT_TRUE(near.has_value());
  EXPECT_EQ(near->key, (Fingerprint{2, 2 ^ 0xabcdULL}));

  cache.erase({2, 2 ^ 0xabcdULL});
  near = cache.find_structural({500, 500 ^ 0x1234ULL});
  ASSERT_TRUE(near.has_value()) << "structural slot orphaned by erase";
  EXPECT_EQ(near->key, (Fingerprint{1, 1 ^ 0xabcdULL}));

  cache.erase({1, 1 ^ 0xabcdULL});
  EXPECT_FALSE(cache.find_structural({500, 500 ^ 0x1234ULL}).has_value());
}

TEST(SolutionCacheStore, EvictionRepointsStructuralIndexToSurvivor) {
  SolutionCache cache(2);
  cache.insert(entry_with_key(1, 500));
  cache.insert(entry_with_key(2, 500));  // slot owner, currently MRU
  // Touch 1 so the slot OWNER becomes the LRU victim.
  ASSERT_TRUE(cache.find({1, 1 ^ 0xabcdULL}).has_value());
  cache.insert(entry_with_key(3, 777));  // evicts 2

  EXPECT_FALSE(cache.find({2, 2 ^ 0xabcdULL}).has_value());
  const auto near = cache.find_structural({500, 500 ^ 0x1234ULL});
  ASSERT_TRUE(near.has_value()) << "structural slot orphaned by eviction";
  EXPECT_EQ(near->key, (Fingerprint{1, 1 ^ 0xabcdULL}));
  EXPECT_TRUE(cache.find_structural({777, 777 ^ 0x1234ULL}).has_value());
}

TEST(SolutionCacheStore, RefreshInsertKeepsStructuralIndexValid) {
  SolutionCache cache(4);
  cache.insert(entry_with_key(1, 500));
  CacheEntry refreshed = entry_with_key(1, 500);
  refreshed.objective = 42.0;
  cache.insert(refreshed);  // same key: refresh path erases + reinserts
  EXPECT_EQ(cache.size(), 1u);
  const auto near = cache.find_structural({500, 500 ^ 0x1234ULL});
  ASSERT_TRUE(near.has_value());
  EXPECT_DOUBLE_EQ(near->objective, 42.0);
}

TEST(SolutionCacheStore, CapacityZeroDisablesEverything) {
  SolutionCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.insert(entry_with_key(1, 1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.insertions(), 0);
  EXPECT_FALSE(cache.find({1, 1 ^ 0xabcdULL}).has_value());
}

// ---- end-to-end service replay ---------------------------------------------

class Collector {
 public:
  MappingService::ResponseSink sink() {
    return [this](const Response& r) {
      const std::scoped_lock lock(mutex_);
      responses_.push_back(r);
    };
  }
  [[nodiscard]] Response only(const std::string& id) const {
    const std::scoped_lock lock(mutex_);
    const Response* found = nullptr;
    int count = 0;
    for (const Response& r : responses_) {
      if (r.id == id && r.method == "map") {
        found = &r;
        ++count;
      }
    }
    EXPECT_EQ(count, 1) << "id " << id << " got " << count << " responses";
    return found != nullptr ? *found : Response{};
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Response> responses_;
};

arch::Board test_board() {
  const auto board =
      workload::board_from_totals({.banks = 24, .ports = 36, .configs = 50});
  EXPECT_TRUE(board.has_value());
  return *board;
}

Request map_request(const std::string& id, std::string design_text) {
  Request r;
  r.method = Method::kMap;
  r.id = id;
  r.map.design_text = std::move(design_text);
  return r;
}

std::string demo_design_text() {
  return "design demo\n"
         "segment coeffs depth 64 width 8 reads 100 writes 50\n"
         "segment window depth 128 width 8 reads 200 writes 10\n"
         "segment taps depth 32 width 16\n"
         "conflicts all\n";
}

/// Same problem, segments renamed and reordered.
std::string permuted_design_text() {
  return "design other\n"
         "segment b depth 128 width 8 reads 200 writes 10\n"
         "segment c depth 32 width 16\n"
         "segment a depth 64 width 8 reads 100 writes 50\n"
         "conflicts all\n";
}

TEST(SolutionCacheService, ExactRepeatReplaysWithIdenticalObjective) {
  Collector out;
  MappingService service({test_board()}, {.workers = 1}, out.sink());
  service.handle(map_request("cold", demo_design_text()));
  service.handle(map_request("warm", demo_design_text()));
  service.handle(map_request("permuted", permuted_design_text()));
  service.drain();

  const Response cold = out.only("cold");
  ASSERT_EQ(cold.status, ResponseStatus::kOk) << cold.error;
  EXPECT_FALSE(cold.cached);

  for (const char* id : {"warm", "permuted"}) {
    const Response hit = out.only(id);
    ASSERT_EQ(hit.status, ResponseStatus::kOk) << hit.error;
    EXPECT_TRUE(hit.cached) << id;
    EXPECT_EQ(hit.solve_status, "optimal");
    EXPECT_DOUBLE_EQ(hit.objective, cold.objective) << id;
    EXPECT_EQ(hit.placements.size(), cold.placements.size()) << id;
    EXPECT_EQ(hit.nodes, 0) << id;
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache.hits, 2);
  EXPECT_EQ(stats.cache.misses, 1);
  EXPECT_EQ(stats.cache.bypasses, 0);
  EXPECT_EQ(stats.cache.insertions, 1);
  EXPECT_EQ(stats.cache.entries, 1);
  EXPECT_EQ(stats.cache.hits + stats.cache.misses + stats.cache.bypasses,
            stats.accepted);
  // Only the cold request actually solved.
  EXPECT_EQ(stats.solves, 1);
}

TEST(SolutionCacheService, NoCacheKnobBypassesLookupAndInsert) {
  Collector out;
  MappingService service({test_board()}, {.workers = 1}, out.sink());
  Request opt_out = map_request("first", demo_design_text());
  opt_out.map.knobs.no_cache = true;
  service.handle(opt_out);
  Request again = map_request("second", demo_design_text());
  again.map.knobs.no_cache = true;
  service.handle(again);
  service.drain();

  EXPECT_FALSE(out.only("first").cached);
  EXPECT_FALSE(out.only("second").cached);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache.bypasses, 2);
  EXPECT_EQ(stats.cache.hits, 0);
  EXPECT_EQ(stats.cache.insertions, 0);
  EXPECT_EQ(stats.solves, 2);
}

TEST(SolutionCacheService, CapacityZeroBehavesLikeNoCache) {
  Collector out;
  MappingService service({test_board()},
                         {.workers = 1, .cache_capacity = 0}, out.sink());
  service.handle(map_request("a", demo_design_text()));
  service.handle(map_request("b", demo_design_text()));
  service.drain();

  EXPECT_FALSE(out.only("a").cached);
  EXPECT_FALSE(out.only("b").cached);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache.bypasses, 2);
  EXPECT_EQ(stats.cache.entries, 0);
}

TEST(SolutionCacheService, TrafficMutationTakesNearMissPath) {
  Collector out;
  MappingService service({test_board()}, {.workers = 1}, out.sink());
  service.handle(map_request("cold", demo_design_text()));
  // Same structures and conflicts, different access counts only.
  service.handle(map_request("mutated",
                             "design demo\n"
                             "segment coeffs depth 64 width 8 reads 900 "
                             "writes 50\n"
                             "segment window depth 128 width 8 reads 200 "
                             "writes 10\n"
                             "segment taps depth 32 width 16\n"
                             "conflicts all\n"));
  service.drain();

  const Response mutated = out.only("mutated");
  ASSERT_EQ(mutated.status, ResponseStatus::kOk) << mutated.error;
  EXPECT_FALSE(mutated.cached);  // near miss solves; only exact hits replay

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache.hits, 0);
  EXPECT_EQ(stats.cache.misses, 2);
  EXPECT_EQ(stats.cache.near_misses, 1);
  EXPECT_EQ(stats.cache.hits + stats.cache.misses + stats.cache.bypasses,
            stats.accepted);
}

TEST(SolutionCacheService, NearMissStillFiresAfterExactHitTouchedTheEntry) {
  // Regression for the LRU-touch / structural-index interaction.  An
  // exact hit splices the cached entry to the front of the LRU list; the
  // structural index must keep resolving afterwards (it maps to the
  // entry's KEY, never to a list position).  Sequence: cold solve, exact
  // hit (touch), then two successive traffic mutations — each must take
  // the near-miss path off the still-indexed entry.
  const auto demo_with_reads = [](int reads) {
    return "design demo\n"
           "segment coeffs depth 64 width 8 reads " +
           std::to_string(reads) +
           " writes 50\n"
           "segment window depth 128 width 8 reads 200 writes 10\n"
           "segment taps depth 32 width 16\n"
           "conflicts all\n";
  };
  Collector out;
  MappingService service({test_board()}, {.workers = 1}, out.sink());
  service.handle(map_request("cold", demo_with_reads(100)));
  service.handle(map_request("warm", demo_with_reads(100)));
  service.handle(map_request("variant1", demo_with_reads(900)));
  service.handle(map_request("variant2", demo_with_reads(500)));
  service.drain();

  for (const char* id : {"cold", "warm", "variant1", "variant2"}) {
    ASSERT_EQ(out.only(id).status, ResponseStatus::kOk) << id;
  }
  EXPECT_TRUE(out.only("warm").cached);
  EXPECT_FALSE(out.only("variant1").cached);
  EXPECT_FALSE(out.only("variant2").cached);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache.hits, 1);
  // BOTH mutations near-missed: the slot survived the exact-hit touch
  // and the first near-miss lookup (near-miss results are not inserted,
  // so the cold entry keeps owning its structural slot).
  EXPECT_EQ(stats.cache.near_misses, 2);
  EXPECT_EQ(stats.cache.hits + stats.cache.misses + stats.cache.bypasses,
            stats.accepted);
}

TEST(SolutionCacheService, DifferentGapContractsNeverShareEntries) {
  Collector out;
  MappingService service({test_board()}, {.workers = 1}, out.sink());
  service.handle(map_request("tight", demo_design_text()));
  Request loose = map_request("loose", demo_design_text());
  loose.map.knobs.gap = 0.25;
  service.handle(loose);
  service.drain();

  EXPECT_TRUE(out.only("tight").status == ResponseStatus::kOk);
  EXPECT_FALSE(out.only("loose").cached);  // different quality contract
}

}  // namespace
}  // namespace gmm::service
