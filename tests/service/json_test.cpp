#include "service/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace gmm::service {
namespace {

Json parse_ok(const std::string& text) {
  const JsonParseResult r = parse_json(text);
  EXPECT_TRUE(r.ok) << text << " -> " << r.error;
  return r.value;
}

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_EQ(parse_ok("true").as_bool(), true);
  EXPECT_EQ(parse_ok("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse_ok("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_ok("-17.25").as_number(), -17.25);
  EXPECT_DOUBLE_EQ(parse_ok("1e3").as_number(), 1000.0);
  EXPECT_EQ(parse_ok("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNested) {
  const Json v = parse_ok(
      R"({"id":"r1","opts":{"threads":4,"deep":[1,[2,[3]]]},"tags":["a","b"]})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.get_string("id"), "r1");
  const Json* opts = v.find("opts");
  ASSERT_NE(opts, nullptr);
  EXPECT_DOUBLE_EQ(opts->get_number("threads", 0), 4.0);
  const Json* tags = v.find("tags");
  ASSERT_NE(tags, nullptr);
  ASSERT_EQ(tags->as_array().size(), 2u);
  EXPECT_EQ(tags->as_array()[1].as_string(), "b");
}

TEST(Json, StringEscapes) {
  const Json v = parse_ok(R"("line\nbreak \"quoted\" tab\t back\\slash")");
  EXPECT_EQ(v.as_string(), "line\nbreak \"quoted\" tab\t back\\slash");
  EXPECT_EQ(parse_ok(R"("\u0041\u00e9")").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(parse_ok(R"("\ud83d\ude00")").as_string(), "\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformed) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "01x", "nan",
        "inf", "{\"a\" 1}", "[1 2]", "\"\\u12\"", "\"\\ud800\"",
        "{\"a\":1} extra", "\"raw\tcontrol\""}) {
    EXPECT_FALSE(parse_json(bad).ok) << bad;
  }
}

TEST(Json, RejectsAbsurdNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  EXPECT_FALSE(parse_json(deep).ok);
}

TEST(Json, DumpRoundTrips) {
  const char* docs[] = {
      R"({"a":1,"b":[true,null,"x"],"c":{"d":-2.5}})",
      R"([])",
      R"({})",
      R"("esc\napes\"ok\"")",
      R"([1,2.5,-3,1e300])",
  };
  for (const char* doc : docs) {
    const Json first = parse_ok(doc);
    const Json second = parse_ok(first.dump());
    EXPECT_TRUE(first == second) << doc << " vs " << first.dump();
  }
}

TEST(Json, DumpIsSingleLineAndEscaped) {
  JsonObject o;
  o["msg"] = std::string("a\nb\x01");
  const std::string line = Json(std::move(o)).dump();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_EQ(line, R"({"msg":"a\nb\u0001"})");
}

TEST(Json, IntegralNumbersPrintWithoutFraction) {
  JsonObject o;
  o["n"] = 1234567890123.0;
  o["f"] = 0.5;
  EXPECT_EQ(Json(std::move(o)).dump(), R"({"f":0.5,"n":1234567890123})");
}

TEST(Json, NonFiniteNumbersDumpAsNull) {
  // JSON has no NaN/Inf literal. A non-finite value sneaking into a
  // stats payload (e.g. a 0/0 rate) must serialize as null — "%.17g"
  // would print "nan"/"inf" and corrupt the whole line for the client.
  JsonObject o;
  o["nan"] = std::nan("");
  o["inf"] = std::numeric_limits<double>::infinity();
  o["ninf"] = -std::numeric_limits<double>::infinity();
  o["ok"] = 1.5;
  const std::string line = Json(std::move(o)).dump();
  EXPECT_EQ(line, R"({"inf":null,"nan":null,"ninf":null,"ok":1.5})");
  EXPECT_TRUE(parse_json(line).ok) << line;
}

TEST(Json, GetHelpersFallBack) {
  const Json v = parse_ok(R"({"s":"x","n":3,"b":true})");
  EXPECT_EQ(v.get_string("s"), "x");
  EXPECT_EQ(v.get_string("missing", "d"), "d");
  EXPECT_EQ(v.get_string("n", "d"), "d");  // wrong type -> fallback
  EXPECT_DOUBLE_EQ(v.get_number("n", -1), 3.0);
  EXPECT_DOUBLE_EQ(v.get_number("s", -1), -1.0);
  EXPECT_TRUE(v.get_bool("b", false));
  EXPECT_TRUE(v.get_bool("nope", true));
  EXPECT_EQ(Json(2.0).find("x"), nullptr);  // non-objects have no fields
}

}  // namespace
}  // namespace gmm::service
