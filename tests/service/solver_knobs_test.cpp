#include "service/solver_knobs.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ilp/mip_solver.hpp"
#include "lp/types.hpp"
#include "service/json.hpp"
#include "support/rng.hpp"

namespace gmm::service {
namespace {

Json parse_object(const std::string& text) {
  const JsonParseResult parsed = parse_json(text);
  EXPECT_TRUE(parsed.ok) << parsed.error;
  return parsed.value;
}

TEST(SolverKnobs, EmptyRequestKeepsDefaults) {
  SolverKnobs knobs;
  std::string reason;
  ASSERT_TRUE(parse_solver_knobs(parse_object("{}"), knobs, reason));
  EXPECT_LT(knobs.gap, 0.0);
  EXPECT_LT(knobs.max_nodes, 0);
  EXPECT_LT(knobs.time_limit_ms, 0.0);
  EXPECT_EQ(knobs.threads, 1);  // the v1 wire default
  EXPECT_LT(knobs.max_stored_bases, 0);
}

TEST(SolverKnobs, ParsesFullOptionsObject) {
  SolverKnobs knobs;
  std::string reason;
  ASSERT_TRUE(parse_solver_knobs(
      parse_object(R"({"options":{"gap":0.02,"max_nodes":5000,)"
                   R"("time_limit_ms":1500,"threads":4,)"
                   R"("max_stored_bases":0}})"),
      knobs, reason))
      << reason;
  EXPECT_DOUBLE_EQ(knobs.gap, 0.02);
  EXPECT_EQ(knobs.max_nodes, 5000);
  EXPECT_DOUBLE_EQ(knobs.time_limit_ms, 1500.0);
  EXPECT_EQ(knobs.threads, 4);
  EXPECT_EQ(knobs.max_stored_bases, 0);  // 0 is valid: disable the cache
}

TEST(SolverKnobs, OptionsOverrideLegacyFlatThreads) {
  SolverKnobs knobs;
  std::string reason;
  ASSERT_TRUE(parse_solver_knobs(
      parse_object(R"({"threads":8,"options":{"threads":2}})"), knobs,
      reason));
  EXPECT_EQ(knobs.threads, 2);

  // Flat alone still works (v1 compatibility).
  ASSERT_TRUE(
      parse_solver_knobs(parse_object(R"({"threads":8})"), knobs, reason));
  EXPECT_EQ(knobs.threads, 8);
}

TEST(SolverKnobs, RejectsOutOfRangeValues) {
  const char* bad[] = {
      R"({"options":{"gap":-0.1}})",
      R"({"options":{"gap":1.01}})",
      R"({"options":{"gap":"small"}})",
      R"({"options":{"max_nodes":0}})",
      R"({"options":{"max_nodes":2.5}})",
      R"({"options":{"max_nodes":50000001}})",
      R"({"options":{"time_limit_ms":0}})",
      R"({"options":{"time_limit_ms":3600001}})",
      R"({"options":{"threads":-1}})",
      R"({"options":{"threads":1025}})",
      R"({"options":{"max_stored_bases":-1}})",
      R"({"threads":"four"})",
      R"({"threads":1.5})",
      R"({"options":{"lp_engine":"cuda"}})",
      R"({"options":{"lp_engine":2}})",
      R"({"options":{"lp_engine":"Dense"}})",
  };
  for (const char* text : bad) {
    SolverKnobs knobs;
    std::string reason;
    EXPECT_FALSE(parse_solver_knobs(parse_object(text), knobs, reason))
        << text;
    EXPECT_FALSE(reason.empty()) << text;
  }
}

TEST(SolverKnobs, RejectsUnknownAndMistypedOptions) {
  SolverKnobs knobs;
  std::string reason;
  EXPECT_FALSE(parse_solver_knobs(
      parse_object(R"({"options":{"gapp":0.1}})"), knobs, reason));
  EXPECT_NE(reason.find("gapp"), std::string::npos) << reason;
  EXPECT_FALSE(parse_solver_knobs(parse_object(R"({"options":[1]})"), knobs,
                                  reason));
  EXPECT_FALSE(parse_solver_knobs(parse_object(R"({"options":"fast"})"),
                                  knobs, reason));
}

TEST(SolverKnobs, LpEngineParsesAppliesAndRoundTrips) {
  SolverKnobs knobs;
  std::string reason;
  ASSERT_TRUE(parse_solver_knobs(
      parse_object(R"({"options":{"lp_engine":"sparse"}})"), knobs, reason))
      << reason;
  EXPECT_EQ(knobs.lp_engine, "sparse");

  ilp::MipOptions mip;
  EXPECT_EQ(mip.lp_engine, lp::LpEngine::kDense);  // the solver default
  apply_solver_knobs(knobs, /*max_threads_per_solve=*/8, mip);
  EXPECT_EQ(mip.lp_engine, lp::LpEngine::kSparse);

  // Unset keeps the default; the canonical wire form round-trips.
  ilp::MipOptions untouched;
  apply_solver_knobs(SolverKnobs{}, /*max_threads_per_solve=*/8, untouched);
  EXPECT_EQ(untouched.lp_engine, lp::LpEngine::kDense);
  const Json wire = solver_knobs_to_json(knobs);
  const Json* field = wire.find("lp_engine");
  ASSERT_NE(field, nullptr);
  EXPECT_EQ(field->as_string(), "sparse");
  SolverKnobs reparsed;
  JsonObject request;
  request["options"] = wire;
  ASSERT_TRUE(parse_solver_knobs(Json(std::move(request)), reparsed, reason))
      << reason;
  EXPECT_EQ(reparsed.lp_engine, "sparse");

  // The reject message names the knob (reject-not-clamp contract).
  EXPECT_FALSE(parse_solver_knobs(
      parse_object(R"({"options":{"lp_engine":"cuda"}})"), knobs, reason));
  EXPECT_NE(reason.find("lp_engine"), std::string::npos) << reason;
}

TEST(SolverKnobs, ApplyMapsOntoMipOptions) {
  SolverKnobs knobs;
  knobs.gap = 0.03;
  knobs.max_nodes = 777;
  knobs.time_limit_ms = 2500.0;
  knobs.threads = 4;
  knobs.max_stored_bases = 128;
  ilp::MipOptions mip;
  apply_solver_knobs(knobs, /*max_threads_per_solve=*/8, mip);
  EXPECT_DOUBLE_EQ(mip.rel_gap, 0.03);
  EXPECT_EQ(mip.node_limit, 777);
  EXPECT_DOUBLE_EQ(mip.time_limit_seconds, 2.5);
  EXPECT_EQ(mip.max_stored_bases, 128u);
  EXPECT_EQ(mip.num_threads, 4);
}

TEST(SolverKnobs, ApplyLeavesDefaultsWhenUnset) {
  const ilp::MipOptions defaults;
  ilp::MipOptions mip;
  apply_solver_knobs(SolverKnobs{}, /*max_threads_per_solve=*/8, mip);
  EXPECT_DOUBLE_EQ(mip.rel_gap, defaults.rel_gap);
  EXPECT_EQ(mip.node_limit, defaults.node_limit);
  EXPECT_DOUBLE_EQ(mip.time_limit_seconds, defaults.time_limit_seconds);
  EXPECT_EQ(mip.max_stored_bases, defaults.max_stored_bases);
  EXPECT_EQ(mip.num_threads, 1);  // the wire default, not the cap
}

TEST(SolverKnobs, ThreadsCapIsOperatorPolicyAndClamps) {
  // The per-solve cap differs from knob validation: an in-range ask above
  // the operator's cap is CLAMPED, not rejected — the cap is deployment
  // policy, not a client bug.
  SolverKnobs knobs;
  knobs.threads = 64;
  ilp::MipOptions mip;
  apply_solver_knobs(knobs, /*max_threads_per_solve=*/8, mip);
  EXPECT_EQ(mip.num_threads, 8);

  knobs.threads = 0;  // "the server's cap"
  apply_solver_knobs(knobs, /*max_threads_per_solve=*/6, mip);
  EXPECT_EQ(mip.num_threads, 6);
}

TEST(SolverKnobs, TimeLimitWireBoundaryGrid) {
  // The wire floor is kMinTimeLimitMs: 0, negatives, and sub-minimum
  // fractions are REJECTED (never clamped, and never reinterpreted as
  // "no limit").  Exactly the minimum is accepted.
  for (const char* text : {
           R"({"options":{"time_limit_ms":0}})",
           R"({"options":{"time_limit_ms":-1}})",
           R"({"options":{"time_limit_ms":-0.001}})",
           R"({"options":{"time_limit_ms":0.5}})",
       }) {
    SolverKnobs knobs;
    std::string reason;
    EXPECT_FALSE(parse_solver_knobs(parse_object(text), knobs, reason))
        << text;
    EXPECT_FALSE(reason.empty()) << text;
    // A rejected knob must not leak a partial value into the struct.
    EXPECT_LT(knobs.time_limit_ms, 0.0) << text;
  }
  SolverKnobs knobs;
  std::string reason;
  ASSERT_TRUE(parse_solver_knobs(
      parse_object(R"({"options":{"time_limit_ms":1}})"), knobs, reason))
      << reason;
  EXPECT_DOUBLE_EQ(knobs.time_limit_ms, SolverKnobs::kMinTimeLimitMs);
}

TEST(SolverKnobs, ProgrammaticZeroBudgetMeansExpiredNotUnlimited) {
  // time_limit_ms = 0.0 cannot arrive over the wire, but a programmatic
  // caller can set it.  The boundary contract: ANY set value is a finite
  // budget — 0.0 is an already-expired one, never "no limit".  A solve
  // under it must stop with kTimeLimit at the first limit check.
  SolverKnobs knobs;
  knobs.time_limit_ms = 0.0;
  ilp::MipOptions mip;
  apply_solver_knobs(knobs, /*max_threads_per_solve=*/8, mip);
  EXPECT_DOUBLE_EQ(mip.time_limit_seconds, 0.0);

  support::Rng rng(11);
  lp::Model m;
  std::vector<lp::Index> vars;
  for (int j = 0; j < 18; ++j) {
    vars.push_back(
        m.add_binary(static_cast<double>(rng.uniform_int(-30, -1))));
  }
  lp::LinExpr knap;
  std::int64_t total = 0;
  for (const lp::Index j : vars) {
    const std::int64_t w = rng.uniform_int(1, 20);
    knap.add(j, static_cast<double>(w));
    total += w;
  }
  m.add_constraint(knap, lp::Sense::kLessEqual,
                   static_cast<double>(total / 2));

  const ilp::MipResult r = ilp::solve_mip(m, mip);
  EXPECT_EQ(r.status, lp::SolveStatus::kTimeLimit);
  EXPECT_EQ(r.stop_reason, lp::SolveStatus::kTimeLimit);
}

TEST(SolverKnobs, UnsetSentinelKeepsUnlimitedBudget) {
  ilp::MipOptions mip;
  apply_solver_knobs(SolverKnobs{}, /*max_threads_per_solve=*/8, mip);
  EXPECT_EQ(mip.time_limit_seconds, lp::kInf);  // only the sentinel keeps it
}

TEST(SolverKnobs, LanesKnobParsesAndRejectsOutOfRange) {
  for (const char* text : {R"({"options":{"lanes":0}})",
                           R"({"options":{"lanes":7}})",
                           R"({"options":{"lanes":-1}})",
                           R"({"options":{"lanes":2.5}})",
                           R"({"options":{"lanes":"three"}})"}) {
    SolverKnobs knobs;
    std::string reason;
    EXPECT_FALSE(parse_solver_knobs(parse_object(text), knobs, reason))
        << text;
  }
  for (const int lanes : {1, 3, SolverKnobs::kMaxLanes}) {
    SolverKnobs knobs;
    std::string reason;
    ASSERT_TRUE(parse_solver_knobs(
        parse_object(R"({"options":{"lanes":)" + std::to_string(lanes) + "}}"),
        knobs, reason))
        << reason;
    EXPECT_EQ(knobs.lanes, lanes);
  }
  SolverKnobs unset;
  std::string reason;
  ASSERT_TRUE(parse_solver_knobs(parse_object("{}"), unset, reason));
  EXPECT_LT(unset.lanes, 1);  // unset: the service picks its default
  SolverKnobs set;
  set.lanes = 4;
  EXPECT_NE(solver_knobs_to_json(set).dump().find("\"lanes\":4"),
            std::string::npos);
}

TEST(SolverKnobs, ToJsonEmitsOnlySetKnobs) {
  EXPECT_EQ(solver_knobs_to_json(SolverKnobs{}).dump(), "{}");
  SolverKnobs knobs;
  knobs.gap = 0.01;
  knobs.threads = 2;
  const std::string text = solver_knobs_to_json(knobs).dump();
  EXPECT_NE(text.find("\"gap\":0.01"), std::string::npos) << text;
  EXPECT_NE(text.find("\"threads\":2"), std::string::npos) << text;
  EXPECT_EQ(text.find("max_nodes"), std::string::npos) << text;
}

}  // namespace
}  // namespace gmm::service
