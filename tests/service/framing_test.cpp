// Property tests for the socket server's jsonl framing: a message
// stream split at ARBITRARY byte boundaries (as TCP is free to do) must
// reassemble into exactly the original lines, in order, regardless of
// how the chunking dice land.
#include "service/socket_server.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/rng.hpp"

namespace gmm::service {
namespace {

std::vector<std::string> split_and_feed(const std::string& stream,
                                        support::Rng& rng) {
  LineSplitter splitter;
  std::vector<std::string> lines;
  std::size_t offset = 0;
  while (offset < stream.size()) {
    // Bias toward tiny chunks (the adversarial case), with occasional
    // large reads like a real socket under load.
    const std::size_t max_chunk = rng.bernoulli(0.2) ? 4096 : 7;
    const std::size_t chunk = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(max_chunk)));
    const std::size_t n = std::min(chunk, stream.size() - offset);
    splitter.feed(stream.data() + offset, n);
    offset += n;
    // Drain opportunistically mid-stream, as the event loop does.
    while (auto line = splitter.next_line()) lines.push_back(*line);
  }
  while (auto line = splitter.next_line()) lines.push_back(*line);
  EXPECT_EQ(splitter.pending_bytes(), 0u);  // stream ended on a newline
  return lines;
}

TEST(Framing, ReassemblesAcrossArbitraryBoundaries) {
  // 300 seeds: random message sets, random chunkings.  Any mismatch
  // prints its seed for a deterministic local repro.
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    support::Rng rng(seed);
    std::vector<std::string> expected;
    const int count = static_cast<int>(rng.uniform_int(1, 40));
    expected.reserve(static_cast<std::size_t>(count));
    std::string stream;
    for (int i = 0; i < count; ++i) {
      // Lines of wildly varying length, including empty ones and bytes
      // that look like JSON but are never inspected by the framer.
      const std::size_t length = static_cast<std::size_t>(
          rng.uniform_int(0, rng.bernoulli(0.1) ? 20000 : 120));
      std::string line;
      line.reserve(length);
      for (std::size_t j = 0; j < length; ++j) {
        // Any byte except '\n' (the frame delimiter) and '\r' (stripped
        // when trailing, so a line must not end with one).
        char c = static_cast<char>(rng.uniform_int(1, 255));
        if (c == '\n' || c == '\r') c = ' ';
        line.push_back(c);
      }
      stream += line;
      stream.push_back('\n');
      expected.push_back(std::move(line));
    }
    const std::vector<std::string> got = split_and_feed(stream, rng);
    ASSERT_EQ(got, expected) << "seed " << seed;
  }
}

TEST(Framing, HandlesPartialTailAndCrLf) {
  LineSplitter splitter;
  const char data[] = "alpha\r\nbeta\ngam";
  splitter.feed(data, sizeof(data) - 1);
  auto line = splitter.next_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "alpha");  // trailing \r stripped
  line = splitter.next_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "beta");
  EXPECT_FALSE(splitter.next_line().has_value());
  EXPECT_FALSE(splitter.has_line());
  EXPECT_EQ(splitter.pending_bytes(), 3u);  // "gam" awaits its newline
  splitter.feed("ma\n", 3);
  ASSERT_TRUE(splitter.has_line());
  EXPECT_EQ(*splitter.next_line(), "gamma");
}

TEST(Framing, ByteByByteFeedMatchesWholeFeed) {
  const std::string stream = "{\"id\":\"r1\"}\n\n{\"id\":\"r2\"}\n";
  LineSplitter whole;
  whole.feed(stream.data(), stream.size());
  LineSplitter dribble;
  std::vector<std::string> got;
  for (const char c : stream) {
    dribble.feed(&c, 1);
    while (auto line = dribble.next_line()) got.push_back(*line);
  }
  std::vector<std::string> expected;
  while (auto line = whole.next_line()) expected.push_back(*line);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(got.size(), 3u);  // the empty line frames too
}

TEST(Framing, EndpointParsing) {
  SocketEndpoint e = parse_socket_endpoint("/tmp/gmm.sock");
  ASSERT_TRUE(e.ok) << e.error;
  EXPECT_TRUE(e.is_unix);
  EXPECT_EQ(e.path, "/tmp/gmm.sock");

  e = parse_socket_endpoint("relative.sock");  // no ':' -> a unix path
  ASSERT_TRUE(e.ok);
  EXPECT_TRUE(e.is_unix);

  e = parse_socket_endpoint("localhost:0");
  ASSERT_TRUE(e.ok) << e.error;
  EXPECT_FALSE(e.is_unix);
  EXPECT_EQ(e.host, "localhost");
  EXPECT_EQ(e.port, 0);

  e = parse_socket_endpoint("127.0.0.1:9000");
  ASSERT_TRUE(e.ok);
  EXPECT_EQ(e.host, "127.0.0.1");
  EXPECT_EQ(e.port, 9000);

  EXPECT_FALSE(parse_socket_endpoint("").ok);
  EXPECT_FALSE(parse_socket_endpoint(":123").ok);
  EXPECT_FALSE(parse_socket_endpoint("host:").ok);
  EXPECT_FALSE(parse_socket_endpoint("host:66000").ok);
  EXPECT_FALSE(parse_socket_endpoint("host:12x").ok);
}

}  // namespace
}  // namespace gmm::service
